//! Crash-safe checkpointing for the resilient crawl.
//!
//! The crawl's durable state has two layers in the [`Store`]:
//!
//! * **Snapshots** (stage `"crawl"`): the complete [`CrawlState`] — pages,
//!   stats, clock, breakers, frontier, parked jobs — plus the fetcher's
//!   per-page attempt counters, written atomically every
//!   `checkpoint_every` jobs.
//! * **Journal**: one record per *dead-lettered* job. Everything else a
//!   job does is deterministic given the restored state (the
//!   [`ChaosFetcher`](crate::ChaosFetcher)'s fault schedule is a pure
//!   function of seed and attempt counts), so live jobs after the snapshot
//!   simply re-execute and land on identical results. Dead-lettered jobs
//!   are the exception — they are *replayed* from the journal instead of
//!   re-fetched, so a resumed crawl never re-attempts a permanently failed
//!   host.
//!
//! Resume therefore reconstructs the exact state the crawl would have had
//! at the crash point: the invariant (pinned by `tests/crash_recovery.rs`)
//! is that crash-at-any-fault-point + resume produces the same
//! [`CrawlResult`] and [`CrawlStats`], bit-identically, as an
//! uninterrupted run. Obs metrics are *not* part of that contract: a
//! resumed process re-emits counters only for the work it performed
//! itself.

use crate::breaker::{BreakerSnapshot, BreakerState, HostBreakers};
use crate::fetch::Fetcher;
use crate::retry::SimClock;
use crate::stats::{AbandonReason, CrawlStats, DeadLetter};
use crate::{crawl_driver, CrawlResult, CrawlState, Job, ResilientConfig, ResilientCrawlOutcome};
use cafc_obs::Obs;
use cafc_store::{fnv1a64, ByteReader, ByteWriter, Store, StoreError};
use cafc_webgraph::{PageId, Url, WebGraph};
use std::collections::{HashMap, VecDeque};

/// The store stage all crawl state lives under.
const STAGE: &str = "crawl";
/// Journal record: run fingerprint (written once, at crawl start).
const KIND_FINGERPRINT: u8 = 0;
/// Journal record: a dead-lettered job and its full effects.
const KIND_DEAD_LETTER: u8 = 1;

fn reason_code(reason: AbandonReason) -> u8 {
    match reason {
        AbandonReason::Permanent => 0,
        AbandonReason::RetriesExhausted => 1,
        AbandonReason::HostCircuitOpen => 2,
    }
}

fn reason_from(code: u8, path: &str) -> Result<AbandonReason, StoreError> {
    match code {
        0 => Ok(AbandonReason::Permanent),
        1 => Ok(AbandonReason::RetriesExhausted),
        2 => Ok(AbandonReason::HostCircuitOpen),
        other => Err(StoreError::Corrupt {
            path: path.to_owned(),
            detail: format!("unknown abandon reason code {other}"),
        }),
    }
}

fn state_code(state: BreakerState) -> u8 {
    match state {
        BreakerState::Closed => 0,
        BreakerState::Open => 1,
        BreakerState::HalfOpen => 2,
    }
}

fn state_from(code: u8, path: &str) -> Result<BreakerState, StoreError> {
    match code {
        0 => Ok(BreakerState::Closed),
        1 => Ok(BreakerState::Open),
        2 => Ok(BreakerState::HalfOpen),
        other => Err(StoreError::Corrupt {
            path: path.to_owned(),
            detail: format!("unknown breaker state code {other}"),
        }),
    }
}

fn put_breaker(w: &mut ByteWriter, snap: &BreakerSnapshot) {
    w.put_u8(state_code(snap.state));
    w.put_u32(snap.consecutive_failures);
    w.put_u32(snap.probe_successes);
    w.put_u64(snap.open_until_ms);
    w.put_u64(snap.trips);
}

fn get_breaker(r: &mut ByteReader<'_>, path: &str) -> Result<BreakerSnapshot, StoreError> {
    Ok(BreakerSnapshot {
        state: state_from(r.get_u8()?, path)?,
        consecutive_failures: r.get_u32()?,
        probe_successes: r.get_u32()?,
        open_until_ms: r.get_u64()?,
        trips: r.get_u64()?,
    })
}

/// One journaled dead-letter job: the seq it happened at, the job itself,
/// and the complete post-job values of everything the job mutated.
#[derive(Debug)]
struct DeadLetterEvent {
    seq: u64,
    page: u32,
    depth: u64,
    reason: AbandonReason,
    dl_attempts: u32,
    // Post-job absolute values of the scalar stats the job can touch.
    attempts: u64,
    successes: u64,
    retries: u64,
    abandoned: u64,
    transient_failures: u64,
    permanent_failures: u64,
    truncated_pages: u64,
    redirects_followed: u64,
    breaker_trips: u64,
    breaker_rejections: u64,
    parked: u64,
    clock_after_ms: u64,
    host: String,
    breaker: BreakerSnapshot,
    fetch_attempts_after: u64,
}

impl DeadLetterEvent {
    fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u64(self.seq);
        w.put_u32(self.page);
        w.put_u64(self.depth);
        w.put_u8(reason_code(self.reason));
        w.put_u32(self.dl_attempts);
        for v in [
            self.attempts,
            self.successes,
            self.retries,
            self.abandoned,
            self.transient_failures,
            self.permanent_failures,
            self.truncated_pages,
            self.redirects_followed,
            self.breaker_trips,
            self.breaker_rejections,
            self.parked,
            self.clock_after_ms,
        ] {
            w.put_u64(v);
        }
        w.put_str(&self.host);
        put_breaker(&mut w, &self.breaker);
        w.put_u64(self.fetch_attempts_after);
        w.into_bytes()
    }

    fn decode(bytes: &[u8]) -> Result<DeadLetterEvent, StoreError> {
        let path = "crawl.journal";
        let mut r = ByteReader::new(bytes, path);
        let seq = r.get_u64()?;
        let page = r.get_u32()?;
        let depth = r.get_u64()?;
        let reason = reason_from(r.get_u8()?, path)?;
        let dl_attempts = r.get_u32()?;
        let mut scalars = [0u64; 12];
        for slot in &mut scalars {
            *slot = r.get_u64()?;
        }
        let host = r.get_str()?.to_owned();
        let breaker = get_breaker(&mut r, path)?;
        let fetch_attempts_after = r.get_u64()?;
        Ok(DeadLetterEvent {
            seq,
            page,
            depth,
            reason,
            dl_attempts,
            attempts: scalars[0],
            successes: scalars[1],
            retries: scalars[2],
            abandoned: scalars[3],
            transient_failures: scalars[4],
            permanent_failures: scalars[5],
            truncated_pages: scalars[6],
            redirects_followed: scalars[7],
            breaker_trips: scalars[8],
            breaker_rejections: scalars[9],
            parked: scalars[10],
            clock_after_ms: scalars[11],
            host,
            breaker,
            fetch_attempts_after,
        })
    }
}

/// Journals dead letters, snapshots at the configured cadence, and replays
/// journaled jobs during resume. Lives only inside [`crawl_resumable`];
/// the plain crawl entry points run without one.
pub(crate) struct CrawlCheckpointer<'s> {
    store: &'s mut Store,
    every: u64,
    fingerprint: u64,
    /// Jobs fully processed so far (the seq of the next job).
    jobs_done: u64,
    /// How many of `stats.dead_letter` have been journaled already.
    journaled_dls: usize,
    /// Journaled events from the interrupted run, ascending by seq.
    pending: VecDeque<DeadLetterEvent>,
}

impl CrawlCheckpointer<'_> {
    /// If the next job was journaled as a dead letter by the interrupted
    /// run, apply its recorded effects and return `true` (the driver skips
    /// the fetch). Divergence between the journal and the live run is a
    /// typed error, never silent.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn replay_job<F: Fetcher>(
        &mut self,
        job: &Job,
        graph: &WebGraph,
        fetcher: &mut F,
        stats: &mut CrawlStats,
        clock: &mut SimClock,
        breakers: &mut HostBreakers,
    ) -> Result<bool, StoreError> {
        let Some(front) = self.pending.front() else {
            return Ok(false);
        };
        if front.seq != self.jobs_done {
            return Ok(false);
        }
        let ev = match self.pending.pop_front() {
            Some(ev) => ev,
            None => return Ok(false),
        };
        if ev.page != job.page.0 || ev.depth != job.depth as u64 {
            return Err(StoreError::ReplayDiverged {
                stage: STAGE.to_owned(),
                detail: format!(
                    "journal has page {} at depth {} for job {}, live run dequeued page {} at depth {}",
                    ev.page, ev.depth, ev.seq, job.page.0, job.depth
                ),
            });
        }
        stats.attempts = ev.attempts;
        stats.successes = ev.successes;
        stats.retries = ev.retries;
        stats.abandoned = ev.abandoned;
        stats.transient_failures = ev.transient_failures;
        stats.permanent_failures = ev.permanent_failures;
        stats.truncated_pages = ev.truncated_pages;
        stats.redirects_followed = ev.redirects_followed;
        stats.breaker_trips = ev.breaker_trips;
        stats.breaker_rejections = ev.breaker_rejections;
        stats.parked = ev.parked;
        stats.dead_letter.push(DeadLetter {
            url: graph.url(job.page).clone(),
            reason: ev.reason,
            attempts: ev.dl_attempts,
        });
        clock.advance_to(ev.clock_after_ms);
        breakers.import_host(&ev.host, &ev.breaker);
        // Restore the fetcher's attempt counter for this page so later
        // fault rolls line up with the uninterrupted schedule.
        let mut attempts = fetcher.export_attempts();
        match attempts.binary_search_by_key(&ev.page, |&(p, _)| p) {
            Ok(i) => attempts[i].1 = ev.fetch_attempts_after,
            Err(i) => attempts.insert(i, (ev.page, ev.fetch_attempts_after)),
        }
        fetcher.restore_attempts(&attempts);
        self.jobs_done += 1;
        self.journaled_dls = stats.dead_letter.len();
        Ok(true)
    }

    /// Bookkeeping after a live job: journal the dead letter it produced
    /// (if any) and snapshot at the cadence boundary.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn after_job<F: Fetcher>(
        &mut self,
        job: &Job,
        graph: &WebGraph,
        fetcher: &F,
        pages: &CrawlResult,
        stats: &CrawlStats,
        clock: &SimClock,
        breakers: &HostBreakers,
        seen: &[bool],
        park_counts: &HashMap<PageId, u32>,
        parked: &[Job],
        queue: &VecDeque<Job>,
    ) -> Result<(), StoreError> {
        let seq = self.jobs_done;
        self.jobs_done += 1;
        if stats.dead_letter.len() > self.journaled_dls {
            // A job produces at most one dead letter; journal it with the
            // post-job state of everything the job mutated.
            let dl = &stats.dead_letter[stats.dead_letter.len() - 1];
            let host = graph.url(job.page).host().to_owned();
            let breaker = breakers
                .get(&host)
                .map(|b| b.export())
                .unwrap_or(BreakerSnapshot {
                    state: BreakerState::Closed,
                    consecutive_failures: 0,
                    probe_successes: 0,
                    open_until_ms: 0,
                    trips: 0,
                });
            let fetch_attempts_after = fetcher
                .export_attempts()
                .iter()
                .find(|&&(p, _)| p == job.page.0)
                .map(|&(_, n)| n)
                .unwrap_or(0);
            let ev = DeadLetterEvent {
                seq,
                page: job.page.0,
                depth: job.depth as u64,
                reason: dl.reason,
                dl_attempts: dl.attempts,
                attempts: stats.attempts,
                successes: stats.successes,
                retries: stats.retries,
                abandoned: stats.abandoned,
                transient_failures: stats.transient_failures,
                permanent_failures: stats.permanent_failures,
                truncated_pages: stats.truncated_pages,
                redirects_followed: stats.redirects_followed,
                breaker_trips: stats.breaker_trips,
                breaker_rejections: stats.breaker_rejections,
                parked: stats.parked,
                clock_after_ms: clock.now_ms(),
                host,
                breaker,
                fetch_attempts_after,
            };
            self.store
                .journal_append(STAGE, KIND_DEAD_LETTER, &ev.encode())?;
            self.journaled_dls = stats.dead_letter.len();
        }
        if self.jobs_done.is_multiple_of(self.every) {
            self.write_snapshot(
                fetcher,
                pages,
                stats,
                clock,
                breakers,
                seen,
                park_counts,
                parked,
                queue,
            )?;
        }
        Ok(())
    }

    /// End of crawl: fail if journaled work was never reached (the journal
    /// belongs to a different run), then write a final snapshot.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn finish<F: Fetcher>(
        &mut self,
        _graph: &WebGraph,
        fetcher: &F,
        pages: &CrawlResult,
        stats: &CrawlStats,
        clock: &SimClock,
        breakers: &HostBreakers,
        seen: &[bool],
        park_counts: &HashMap<PageId, u32>,
        parked: &[Job],
        queue: &VecDeque<Job>,
    ) -> Result<(), StoreError> {
        if let Some(leftover) = self.pending.front() {
            return Err(StoreError::ReplayDiverged {
                stage: STAGE.to_owned(),
                detail: format!(
                    "crawl finished at job {} but the journal still holds an event for job {}",
                    self.jobs_done, leftover.seq
                ),
            });
        }
        self.write_snapshot(
            fetcher,
            pages,
            stats,
            clock,
            breakers,
            seen,
            park_counts,
            parked,
            queue,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn write_snapshot<F: Fetcher>(
        &mut self,
        fetcher: &F,
        pages: &CrawlResult,
        stats: &CrawlStats,
        clock: &SimClock,
        breakers: &HostBreakers,
        seen: &[bool],
        park_counts: &HashMap<PageId, u32>,
        parked: &[Job],
        queue: &VecDeque<Job>,
    ) -> Result<(), StoreError> {
        let mut w = ByteWriter::new();
        w.put_u64(self.fingerprint);
        for list in [
            &pages.visited,
            &pages.searchable_form_pages,
            &pages.rejected_form_pages,
        ] {
            w.put_usize(list.len());
            for p in list.iter() {
                w.put_u32(p.0);
            }
        }
        w.put_usize(pages.dead_links);
        for v in [
            stats.attempts,
            stats.successes,
            stats.retries,
            stats.abandoned,
            stats.transient_failures,
            stats.permanent_failures,
            stats.truncated_pages,
            stats.redirects_followed,
            stats.breaker_trips,
            stats.breaker_rejections,
            stats.parked,
        ] {
            w.put_u64(v);
        }
        w.put_usize(stats.dead_letter.len());
        for dl in &stats.dead_letter {
            w.put_str(&dl.url.to_string());
            w.put_u8(reason_code(dl.reason));
            w.put_u32(dl.attempts);
        }
        w.put_u64(clock.now_ms());
        let breaker_snaps = breakers.export();
        w.put_usize(breaker_snaps.len());
        for (host, snap) in &breaker_snaps {
            w.put_str(host);
            put_breaker(&mut w, snap);
        }
        w.put_usize(seen.len());
        let mut packed = vec![0u8; seen.len().div_ceil(8)];
        for (i, &s) in seen.iter().enumerate() {
            if s {
                packed[i / 8] |= 1 << (i % 8);
            }
        }
        w.put_bytes(&packed);
        let mut parks: Vec<(u32, u32)> = park_counts.iter().map(|(p, &c)| (p.0, c)).collect();
        parks.sort_unstable();
        w.put_usize(parks.len());
        for (p, c) in parks {
            w.put_u32(p);
            w.put_u32(c);
        }
        for jobs in [parked, queue.iter().copied().collect::<Vec<_>>().as_slice()] {
            w.put_usize(jobs.len());
            for job in jobs {
                w.put_u32(job.page.0);
                w.put_u64(job.depth as u64);
            }
        }
        let attempts = fetcher.export_attempts();
        w.put_usize(attempts.len());
        for (p, n) in attempts {
            w.put_u32(p);
            w.put_u64(n);
        }
        self.store.snapshot(STAGE, self.jobs_done, &w.into_bytes())
    }
}

/// Decode a crawl snapshot back into live state, restoring the fetcher's
/// attempt counters as a side effect.
fn decode_state<F: Fetcher>(
    graph: &WebGraph,
    config: &ResilientConfig,
    fetcher: &mut F,
    payload: &[u8],
    fingerprint: u64,
) -> Result<CrawlState, StoreError> {
    let path = "crawl.snap";
    let mut r = ByteReader::new(payload, path);
    let stored_fp = r.get_u64()?;
    if stored_fp != fingerprint {
        return Err(StoreError::FingerprintMismatch {
            stage: STAGE.to_owned(),
        });
    }
    let get_pages = |r: &mut ByteReader<'_>| -> Result<Vec<PageId>, StoreError> {
        let n = r.get_usize()?;
        let mut pages = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            pages.push(PageId(r.get_u32()?));
        }
        Ok(pages)
    };
    let visited = get_pages(&mut r)?;
    let searchable = get_pages(&mut r)?;
    let rejected = get_pages(&mut r)?;
    let dead_links = r.get_usize()?;
    let mut scalars = [0u64; 11];
    for slot in &mut scalars {
        *slot = r.get_u64()?;
    }
    let n_dls = r.get_usize()?;
    let mut dead_letter = Vec::with_capacity(n_dls.min(1 << 20));
    for _ in 0..n_dls {
        let url_str = r.get_str()?;
        let url = Url::parse(url_str).ok_or_else(|| StoreError::Corrupt {
            path: path.to_owned(),
            detail: format!("unparseable dead-letter url {url_str:?}"),
        })?;
        let reason = reason_from(r.get_u8()?, path)?;
        let attempts = r.get_u32()?;
        dead_letter.push(DeadLetter {
            url,
            reason,
            attempts,
        });
    }
    let clock_ms = r.get_u64()?;
    let n_breakers = r.get_usize()?;
    let mut breaker_snaps = Vec::with_capacity(n_breakers.min(1 << 20));
    for _ in 0..n_breakers {
        let host = r.get_str()?.to_owned();
        let snap = get_breaker(&mut r, path)?;
        breaker_snaps.push((host, snap));
    }
    let seen_len = r.get_usize()?;
    if seen_len != graph.len() {
        return Err(StoreError::FingerprintMismatch {
            stage: STAGE.to_owned(),
        });
    }
    let packed = r.get_bytes()?;
    if packed.len() != seen_len.div_ceil(8) {
        return Err(StoreError::Corrupt {
            path: path.to_owned(),
            detail: "seen bitmap length mismatch".to_owned(),
        });
    }
    let seen: Vec<bool> = (0..seen_len)
        .map(|i| packed[i / 8] & (1 << (i % 8)) != 0)
        .collect();
    let n_parks = r.get_usize()?;
    let mut park_counts = HashMap::with_capacity(n_parks.min(1 << 20));
    for _ in 0..n_parks {
        let p = r.get_u32()?;
        let c = r.get_u32()?;
        park_counts.insert(PageId(p), c);
    }
    let get_jobs = |r: &mut ByteReader<'_>| -> Result<Vec<Job>, StoreError> {
        let n = r.get_usize()?;
        let mut jobs = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            let page = PageId(r.get_u32()?);
            let depth = usize::try_from(r.get_u64()?).map_err(|_| StoreError::Corrupt {
                path: path.to_owned(),
                detail: "job depth exceeds usize".to_owned(),
            })?;
            jobs.push(Job { page, depth });
        }
        Ok(jobs)
    };
    let parked = get_jobs(&mut r)?;
    let queue: VecDeque<Job> = get_jobs(&mut r)?.into();
    let n_attempts = r.get_usize()?;
    let mut attempts = Vec::with_capacity(n_attempts.min(1 << 20));
    for _ in 0..n_attempts {
        let p = r.get_u32()?;
        let n = r.get_u64()?;
        attempts.push((p, n));
    }
    fetcher.restore_attempts(&attempts);

    let mut breakers = HostBreakers::new(config.breaker);
    breakers.import(&breaker_snaps);
    let mut clock = SimClock::new();
    clock.advance_to(clock_ms);
    let stats = CrawlStats {
        attempts: scalars[0],
        successes: scalars[1],
        retries: scalars[2],
        abandoned: scalars[3],
        transient_failures: scalars[4],
        permanent_failures: scalars[5],
        truncated_pages: scalars[6],
        redirects_followed: scalars[7],
        breaker_trips: scalars[8],
        breaker_rejections: scalars[9],
        parked: scalars[10],
        sim_elapsed_ms: 0,
        dead_letter,
        abandoned_hosts: Vec::new(),
    };
    Ok(CrawlState {
        pages: CrawlResult {
            visited,
            searchable_form_pages: searchable,
            rejected_form_pages: rejected,
            dead_links,
        },
        stats,
        clock,
        breakers,
        seen,
        park_counts,
        parked,
        queue,
    })
}

/// Fingerprint of everything that shapes a crawl's trajectory: the graph
/// size, the seed, and every numeric knob. A checkpoint written under a
/// different fingerprint refuses to resume. (The fetcher's own fault
/// configuration cannot be observed through the [`Fetcher`] trait; callers
/// changing fault seeds between runs get the divergence error instead.)
fn run_fingerprint(graph: &WebGraph, seed: PageId, config: &ResilientConfig) -> u64 {
    let mut w = ByteWriter::new();
    w.put_u32(seed.0);
    w.put_usize(graph.len());
    w.put_usize(config.crawl.max_pages);
    w.put_usize(config.crawl.max_depth);
    w.put_u32(config.max_parks);
    w.put_u32(config.retry.max_retries);
    w.put_u64(config.retry.base_delay_ms);
    w.put_u64(config.retry.max_delay_ms);
    w.put_f64(config.retry.jitter);
    w.put_u32(config.breaker.failure_threshold);
    w.put_u64(config.breaker.cooldown_ms);
    w.put_u32(config.breaker.half_open_successes);
    fnv1a64(&w.into_bytes())
}

/// [`crawl_resilient_obs`](crate::crawl_resilient_obs) with durable
/// checkpoints: snapshots every `store.config().checkpoint_every` jobs,
/// dead letters journaled as they happen, and — when `resume` is true —
/// recovery from whatever valid state the store holds. A resumed crawl
/// produces bit-identical [`CrawlResult`] and [`CrawlStats`] to an
/// uninterrupted one and never re-attempts dead-lettered pages.
pub fn crawl_resumable<F: Fetcher>(
    graph: &WebGraph,
    fetcher: &mut F,
    seed: PageId,
    config: &ResilientConfig,
    obs: &Obs,
    store: &mut Store,
    resume: bool,
) -> Result<ResilientCrawlOutcome, StoreError> {
    let fingerprint = run_fingerprint(graph, seed, config);
    let mut pending = VecDeque::new();
    let mut snapshot = None;
    if resume {
        // Drop any torn tail the crash left, then load the durable state.
        store.journal_truncate_to_valid(STAGE)?;
        snapshot = store.load_snapshot(STAGE)?;
        let since = snapshot.as_ref().map_or(0, |s| s.seq);
        let mut saw_fingerprint = false;
        for rec in store.journal_records(STAGE)? {
            match rec.kind {
                KIND_FINGERPRINT => {
                    let mut r = ByteReader::new(&rec.payload, "crawl.journal");
                    if r.get_u64()? != fingerprint {
                        return Err(StoreError::FingerprintMismatch {
                            stage: STAGE.to_owned(),
                        });
                    }
                    saw_fingerprint = true;
                }
                KIND_DEAD_LETTER => {
                    let ev = DeadLetterEvent::decode(&rec.payload)?;
                    if ev.seq >= since {
                        pending.push_back(ev);
                    }
                }
                // Unknown kinds are future format extensions: ignore.
                _ => {}
            }
        }
        if !saw_fingerprint && snapshot.is_none() {
            // Nothing durable: a --resume against an empty directory is a
            // fresh start.
            store.journal_append(STAGE, KIND_FINGERPRINT, &{
                let mut w = ByteWriter::new();
                w.put_u64(fingerprint);
                w.into_bytes()
            })?;
        }
    } else {
        store.reset_stage(STAGE)?;
        store.journal_append(STAGE, KIND_FINGERPRINT, &{
            let mut w = ByteWriter::new();
            w.put_u64(fingerprint);
            w.into_bytes()
        })?;
    }

    let (state, jobs_done) = match &snapshot {
        Some(snap) => {
            let state = decode_state(graph, config, fetcher, &snap.payload, fingerprint)?;
            (state, snap.seq)
        }
        None => (CrawlState::initial(graph, seed, config), 0),
    };
    let journaled_dls = state.stats.dead_letter.len();
    let every = store.config().checkpoint_every.max(1);
    let mut ckpt = CrawlCheckpointer {
        store,
        every,
        fingerprint,
        jobs_done,
        journaled_dls,
        pending,
    };
    crawl_driver(graph, fetcher, config, obs, state, Some(&mut ckpt))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{crawl_resilient, ChaosFetcher, FaultConfig};
    use cafc_corpus::{generate, CorpusConfig};
    use cafc_store::{ChaosFs, FaultPlan, StdFs, StoreConfig};

    fn store_at(dir: &std::path::Path, every: u64) -> Store {
        Store::open(
            dir,
            StoreConfig::new().with_checkpoint_every(every),
            Obs::disabled(),
        )
        .expect("open store")
    }

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("cafc-crawl-resume-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn fault_config() -> FaultConfig {
        FaultConfig {
            transient_rate: 0.25,
            permanent_rate: 0.05,
            truncate_rate: 0.1,
            redirect_rate: 0.05,
            seed: 1234,
            ..Default::default()
        }
    }

    fn assert_outcomes_identical(a: &ResilientCrawlOutcome, b: &ResilientCrawlOutcome) {
        assert_eq!(a.pages.visited, b.pages.visited);
        assert_eq!(a.pages.searchable_form_pages, b.pages.searchable_form_pages);
        assert_eq!(a.pages.rejected_form_pages, b.pages.rejected_form_pages);
        assert_eq!(a.pages.dead_links, b.pages.dead_links);
        assert_eq!(a.stats.attempts, b.stats.attempts);
        assert_eq!(a.stats.successes, b.stats.successes);
        assert_eq!(a.stats.retries, b.stats.retries);
        assert_eq!(a.stats.abandoned, b.stats.abandoned);
        assert_eq!(a.stats.sim_elapsed_ms, b.stats.sim_elapsed_ms);
        assert_eq!(a.stats.breaker_trips, b.stats.breaker_trips);
        assert_eq!(a.stats.abandoned_hosts, b.stats.abandoned_hosts);
        assert_eq!(a.stats.dead_letter.len(), b.stats.dead_letter.len());
        for (da, db) in a.stats.dead_letter.iter().zip(&b.stats.dead_letter) {
            assert_eq!(da.url.to_string(), db.url.to_string());
            assert_eq!(da.reason, db.reason);
            assert_eq!(da.attempts, db.attempts);
        }
    }

    #[test]
    fn checkpointed_crawl_matches_plain_crawl() {
        let web = generate(&CorpusConfig::small(41));
        let mut chaos = ChaosFetcher::over_graph(&web.graph, fault_config());
        let baseline = crawl_resilient(
            &web.graph,
            &mut chaos,
            web.portal,
            &ResilientConfig::default(),
        );

        let dir = tmp_dir("clean");
        let mut store = store_at(&dir, 8);
        let mut chaos = ChaosFetcher::over_graph(&web.graph, fault_config());
        let outcome = crawl_resumable(
            &web.graph,
            &mut chaos,
            web.portal,
            &ResilientConfig::default(),
            &Obs::disabled(),
            &mut store,
            false,
        )
        .expect("checkpointed crawl");
        assert_outcomes_identical(&baseline, &outcome);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_and_resume_is_bit_identical_and_skips_dead_pages() {
        let web = generate(&CorpusConfig::small(41));
        let config = ResilientConfig::default();
        let mut chaos = ChaosFetcher::over_graph(&web.graph, fault_config());
        let baseline = crawl_resilient(&web.graph, &mut chaos, web.portal, &config);
        assert!(
            !baseline.stats.dead_letter.is_empty(),
            "fault config must produce dead letters for this test to bite"
        );

        let dir = tmp_dir("crash");
        // Crash the run at a spread of store-operation indices.
        for at in [3u64, 9, 17, 31] {
            let _ = std::fs::remove_dir_all(&dir);
            let (chaos_fs, _ctl) = ChaosFs::controlled(
                StdFs,
                FaultPlan::AtOp {
                    op: at,
                    kind: cafc_store::FaultKind::TornWrite,
                },
            );
            let mut store = Store::open_with_vfs(
                Box::new(chaos_fs),
                &dir,
                StoreConfig::new().with_checkpoint_every(4),
                Obs::disabled(),
            )
            .expect("open");
            let mut fetcher = ChaosFetcher::over_graph(&web.graph, fault_config());
            let crashed = crawl_resumable(
                &web.graph,
                &mut fetcher,
                web.portal,
                &config,
                &Obs::disabled(),
                &mut store,
                false,
            );
            if let Ok(completed) = &crashed {
                // The injected op index was past the run's I/O; nothing to
                // resume. Still verify the completed run matched.
                assert_outcomes_identical(&baseline, completed);
                continue;
            }

            // Fresh process: resume over the real filesystem with a fresh
            // fetcher (its state comes back from the snapshot).
            let mut store = store_at(&dir, 4);
            let mut fetcher = ChaosFetcher::over_graph(&web.graph, fault_config());
            let resumed = crawl_resumable(
                &web.graph,
                &mut fetcher,
                web.portal,
                &config,
                &Obs::disabled(),
                &mut store,
                true,
            )
            .expect("resume after crash at op {at}");
            assert_outcomes_identical(&baseline, &resumed);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_with_different_config_is_refused() {
        let web = generate(&CorpusConfig::small(41));
        let dir = tmp_dir("fpmismatch");
        let mut store = store_at(&dir, 4);
        let mut chaos = ChaosFetcher::over_graph(&web.graph, fault_config());
        crawl_resumable(
            &web.graph,
            &mut chaos,
            web.portal,
            &ResilientConfig::default(),
            &Obs::disabled(),
            &mut store,
            false,
        )
        .expect("first run");
        let mut other = ResilientConfig::default();
        other.crawl.max_depth = 2;
        let mut chaos = ChaosFetcher::over_graph(&web.graph, fault_config());
        let err = crawl_resumable(
            &web.graph,
            &mut chaos,
            web.portal,
            &other,
            &Obs::disabled(),
            &mut store,
            true,
        )
        .expect_err("different config must refuse to resume");
        assert!(
            matches!(err, StoreError::FingerprintMismatch { .. }),
            "{err}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
