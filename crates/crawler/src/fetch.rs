//! The fetch abstraction: how the crawler retrieves a page.
//!
//! Real crawls do not read from a perfect in-memory graph — they face
//! timeouts, dead hosts, truncated responses and transient server errors.
//! [`Fetcher`] abstracts retrieval behind a fallible call so the crawler
//! can be written against the failure model instead of the happy path:
//! [`GraphFetcher`] is the ideal fetcher over a [`WebGraph`], and
//! [`ChaosFetcher`] wraps any fetcher with deterministic, seeded fault
//! injection (transient and permanent errors, redirects, truncated bodies,
//! simulated latency) at configurable per-class rates.

use cafc_webgraph::{PageId, WebGraph};
use std::collections::HashMap;

// The deterministic fault/jitter source: the workspace-shared splitmix64
// step from `cafc-check`, bit-identical to the private copy this crate
// carried before the PRNG unification — seeded fault schedules replay
// unchanged.
pub(crate) use cafc_check::{mix64 as splitmix64, Seed};

/// Why a fetch failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchError {
    /// The server did not answer in time (transient).
    TimedOut,
    /// The server answered 5xx (transient).
    ServerError,
    /// The connection dropped mid-transfer (transient).
    ConnectionReset,
    /// The URL has no content behind it — 404 (permanent).
    NotFound,
    /// The resource is gone for good — 410 (permanent).
    Gone,
}

impl FetchError {
    /// Transient errors are worth retrying; permanent ones are not.
    pub fn is_transient(self) -> bool {
        matches!(
            self,
            FetchError::TimedOut | FetchError::ServerError | FetchError::ConnectionReset
        )
    }
}

impl std::fmt::Display for FetchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            FetchError::TimedOut => "timed out",
            FetchError::ServerError => "server error (5xx)",
            FetchError::ConnectionReset => "connection reset",
            FetchError::NotFound => "not found (404)",
            FetchError::Gone => "gone (410)",
        };
        f.write_str(name)
    }
}

/// A successful fetch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FetchResponse {
    /// The page whose content was returned — differs from the requested
    /// page when the fetch was redirected.
    pub page: PageId,
    /// The (possibly truncated) HTML body.
    pub html: String,
    /// True when the body was cut off mid-transfer.
    pub truncated: bool,
    /// True when the request was redirected to another page.
    pub redirected: bool,
    /// Simulated wall-clock cost of the fetch in milliseconds.
    pub latency_ms: u64,
}

/// Page retrieval. Implementations decide what "the network" looks like.
pub trait Fetcher {
    /// Fetch `page`, returning its HTML or a classified error.
    fn fetch(&mut self, page: PageId) -> Result<FetchResponse, FetchError>;

    /// Export whatever per-page attempt state the fetcher carries, as
    /// `(page id, attempts)` sorted by page id. Stateless fetchers (the
    /// default) export nothing. Checkpointing uses this so a resumed
    /// [`ChaosFetcher`] rolls the same per-attempt dice it would have
    /// rolled in an uninterrupted run.
    fn export_attempts(&self) -> Vec<(u32, u64)> {
        Vec::new()
    }

    /// Restore state previously produced by
    /// [`Fetcher::export_attempts`]. A no-op for stateless fetchers.
    fn restore_attempts(&mut self, _attempts: &[(u32, u64)]) {}
}

/// The ideal fetcher: reads straight from the in-memory [`WebGraph`] with
/// zero latency and no faults. Content-less placeholder pages yield
/// [`FetchError::NotFound`].
#[derive(Debug)]
pub struct GraphFetcher<'g> {
    graph: &'g WebGraph,
}

impl<'g> GraphFetcher<'g> {
    /// A fetcher over `graph`.
    pub fn new(graph: &'g WebGraph) -> Self {
        GraphFetcher { graph }
    }
}

impl Fetcher for GraphFetcher<'_> {
    fn fetch(&mut self, page: PageId) -> Result<FetchResponse, FetchError> {
        match self.graph.html(page) {
            Some(html) => Ok(FetchResponse {
                page,
                html: html.to_owned(),
                truncated: false,
                redirected: false,
                latency_ms: 0,
            }),
            None => Err(FetchError::NotFound),
        }
    }
}

/// Per-class fault rates for [`ChaosFetcher`]. All rates are probabilities
/// in [0, 1]; the default injects nothing.
#[derive(Debug, Clone, Copy)]
pub struct FaultConfig {
    /// Probability that an attempt fails with a transient error (timeout,
    /// 5xx, connection reset). Re-rolled on every attempt, so retries can
    /// succeed.
    pub transient_rate: f64,
    /// Probability that a page is permanently dead (410). Rolled once per
    /// page: a doomed page fails every attempt.
    pub permanent_rate: f64,
    /// Probability that a successful response body is truncated, possibly
    /// mid-tag.
    pub truncate_rate: f64,
    /// Probability that a fetch is redirected to the page's site root.
    pub redirect_rate: f64,
    /// Simulated latency range (min, max) in milliseconds per successful
    /// fetch.
    pub latency_ms: (u64, u64),
    /// Stream seed: the same seed replays the exact same fault schedule.
    pub seed: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            transient_rate: 0.0,
            permanent_rate: 0.0,
            truncate_rate: 0.0,
            redirect_rate: 0.0,
            latency_ms: (1, 40),
            seed: 0,
        }
    }
}

impl FaultConfig {
    /// A config that injects only transient faults at `rate`.
    pub fn transient(rate: f64, seed: u64) -> Self {
        FaultConfig {
            transient_rate: rate,
            seed,
            ..FaultConfig::default()
        }
    }
}

// Salt constants separating the chaos decision streams.
const SALT_PERMANENT: u64 = 0x1;
const SALT_TRANSIENT: u64 = 0x2;
const SALT_VARIANT: u64 = 0x3;
const SALT_REDIRECT: u64 = 0x4;
const SALT_TRUNCATE: u64 = 0x5;
const SALT_CUT: u64 = 0x6;
const SALT_LATENCY: u64 = 0x7;

/// A deterministic fault-injecting wrapper around another fetcher.
///
/// Every decision is a pure function of `(seed, page, per-page attempt
/// number)`, so a crawl against the same graph with the same seed replays
/// the identical fault schedule — failures are reproducible, and retrying
/// a transiently-failed page rolls fresh dice.
#[derive(Debug)]
pub struct ChaosFetcher<'g, F> {
    graph: &'g WebGraph,
    inner: F,
    config: FaultConfig,
    attempts: HashMap<PageId, u64>,
}

impl<'g> ChaosFetcher<'g, GraphFetcher<'g>> {
    /// Chaos over the ideal graph fetcher — the usual construction.
    pub fn over_graph(graph: &'g WebGraph, config: FaultConfig) -> Self {
        ChaosFetcher::new(graph, GraphFetcher::new(graph), config)
    }
}

impl<'g, F: Fetcher> ChaosFetcher<'g, F> {
    /// Wrap `inner`, injecting faults per `config`. The graph reference is
    /// needed to resolve redirect targets (site roots).
    pub fn new(graph: &'g WebGraph, inner: F, config: FaultConfig) -> Self {
        ChaosFetcher {
            graph,
            inner,
            config,
            attempts: HashMap::new(),
        }
    }

    /// How many fetch attempts have been made against `page`.
    pub fn attempts_for(&self, page: PageId) -> u64 {
        self.attempts.get(&page).copied().unwrap_or(0)
    }

    fn roll(&self, page: PageId, attempt: u64, salt: u64) -> f64 {
        Seed::new(self.config.seed).unit(u64::from(page.0), attempt, salt)
    }
}

impl<F: Fetcher> Fetcher for ChaosFetcher<'_, F> {
    fn fetch(&mut self, page: PageId) -> Result<FetchResponse, FetchError> {
        let attempt = {
            let counter = self.attempts.entry(page).or_insert(0);
            *counter += 1;
            *counter
        };

        // Permanently dead pages fail identically on every attempt.
        if self.roll(page, 0, SALT_PERMANENT) < self.config.permanent_rate {
            return Err(FetchError::Gone);
        }

        // Transient failure, re-rolled per attempt.
        if self.roll(page, attempt, SALT_TRANSIENT) < self.config.transient_rate {
            let variant = self.roll(page, attempt, SALT_VARIANT);
            return Err(if variant < 1.0 / 3.0 {
                FetchError::TimedOut
            } else if variant < 2.0 / 3.0 {
                FetchError::ServerError
            } else {
                FetchError::ConnectionReset
            });
        }

        let mut response = self.inner.fetch(page)?;

        // Redirect to the site root (if the page is not already the root
        // and the root exists in the graph).
        if self.roll(page, attempt, SALT_REDIRECT) < self.config.redirect_rate {
            let url = self.graph.url(page);
            if !url.is_site_root() {
                if let Some(root) = self.graph.page_id(&url.site_root()) {
                    if root != page {
                        response = self.inner.fetch(root)?;
                        response.page = root;
                        response.redirected = true;
                    }
                }
            }
        }

        // Truncation: cut the body somewhere in its middle — mid-tag cuts
        // included, the parser has to cope.
        if self.roll(page, attempt, SALT_TRUNCATE) < self.config.truncate_rate
            && !response.html.is_empty()
        {
            let frac = 0.2 + 0.7 * self.roll(page, attempt, SALT_CUT);
            let mut cut = (response.html.len() as f64 * frac) as usize;
            while cut > 0 && !response.html.is_char_boundary(cut) {
                cut -= 1;
            }
            response.html.truncate(cut);
            response.truncated = true;
        }

        // Simulated latency.
        let (lo, hi) = self.config.latency_ms;
        let span = hi.saturating_sub(lo) + 1;
        let latency = lo + (splitmix64(self.roll(page, attempt, SALT_LATENCY).to_bits()) % span);
        response.latency_ms = response.latency_ms.saturating_add(latency);

        Ok(response)
    }

    fn export_attempts(&self) -> Vec<(u32, u64)> {
        let mut attempts: Vec<(u32, u64)> = self.attempts.iter().map(|(p, &n)| (p.0, n)).collect();
        attempts.sort_unstable();
        attempts
    }

    fn restore_attempts(&mut self, attempts: &[(u32, u64)]) {
        self.attempts = attempts.iter().map(|&(p, n)| (PageId(p), n)).collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cafc_webgraph::Url;

    fn url(s: &str) -> Url {
        Url::parse(s).expect("test url parses")
    }

    fn two_page_site() -> (WebGraph, PageId, PageId) {
        let mut g = WebGraph::new();
        let root = g.add_page(url("http://a.com/"), "<a href=\"/f\">f</a>".into());
        let f = g.add_page(url("http://a.com/f"), "<form><input name=q></form>".into());
        (g, root, f)
    }

    #[test]
    fn graph_fetcher_returns_html_and_404s_placeholders() {
        let (mut g, root, _) = {
            let (g, r, f) = two_page_site();
            (g, r, f)
        };
        let ghost = g.intern(url("http://ghost.com/"));
        let mut fetcher = GraphFetcher::new(&g);
        let resp = fetcher.fetch(root).expect("root has content");
        assert!(resp.html.contains("href"));
        assert!(!resp.truncated && !resp.redirected);
        assert_eq!(fetcher.fetch(ghost), Err(FetchError::NotFound));
    }

    #[test]
    fn zero_rates_inject_nothing() {
        let (g, root, f) = two_page_site();
        let mut chaos = ChaosFetcher::over_graph(&g, FaultConfig::default());
        for page in [root, f, root, f] {
            let resp = chaos.fetch(page).expect("no faults configured");
            assert_eq!(resp.page, page);
            assert!(!resp.truncated && !resp.redirected);
        }
    }

    #[test]
    fn chaos_is_deterministic_per_seed() {
        let (g, root, f) = two_page_site();
        let config = FaultConfig {
            transient_rate: 0.5,
            truncate_rate: 0.5,
            seed: 7,
            ..Default::default()
        };
        let run =
            |mut chaos: ChaosFetcher<'_, GraphFetcher<'_>>| -> Vec<Result<usize, FetchError>> {
                (0..20)
                    .map(|i| {
                        chaos
                            .fetch(if i % 2 == 0 { root } else { f })
                            .map(|r| r.html.len())
                    })
                    .collect()
            };
        let a = run(ChaosFetcher::over_graph(&g, config));
        let b = run(ChaosFetcher::over_graph(&g, config));
        assert_eq!(a, b);
        let c = run(ChaosFetcher::over_graph(
            &g,
            FaultConfig { seed: 8, ..config },
        ));
        assert_ne!(a, c, "different seed should give a different schedule");
    }

    #[test]
    fn transient_failures_eventually_succeed_on_retry() {
        let (g, _, f) = two_page_site();
        let mut chaos = ChaosFetcher::over_graph(&g, FaultConfig::transient(0.5, 11));
        let ok = (0..32).any(|_| chaos.fetch(f).is_ok());
        assert!(
            ok,
            "a 50% transient rate must not fail 32 attempts in a row"
        );
    }

    #[test]
    fn permanently_dead_pages_fail_every_attempt() {
        let (g, root, f) = two_page_site();
        let config = FaultConfig {
            permanent_rate: 1.0,
            ..Default::default()
        };
        let mut chaos = ChaosFetcher::over_graph(&g, config);
        for _ in 0..4 {
            assert_eq!(chaos.fetch(root), Err(FetchError::Gone));
            assert_eq!(chaos.fetch(f), Err(FetchError::Gone));
        }
    }

    #[test]
    fn truncation_cuts_the_body() {
        let (g, _, f) = two_page_site();
        let config = FaultConfig {
            truncate_rate: 1.0,
            ..Default::default()
        };
        let mut chaos = ChaosFetcher::over_graph(&g, config);
        let resp = chaos.fetch(f).expect("fetch succeeds");
        assert!(resp.truncated);
        let full = g.html(f).expect("content").len();
        assert!(resp.html.len() < full, "{} !< {full}", resp.html.len());
    }

    #[test]
    fn redirects_land_on_the_site_root() {
        let (g, root, f) = two_page_site();
        let config = FaultConfig {
            redirect_rate: 1.0,
            ..Default::default()
        };
        let mut chaos = ChaosFetcher::over_graph(&g, config);
        let resp = chaos.fetch(f).expect("fetch succeeds");
        assert!(resp.redirected);
        assert_eq!(resp.page, root);
        // The root itself cannot be redirected further.
        let resp = chaos.fetch(root).expect("fetch succeeds");
        assert!(!resp.redirected);
        assert_eq!(resp.page, root);
    }

    #[test]
    fn restored_attempt_state_replays_the_fault_schedule() {
        let (g, root, f) = two_page_site();
        let config = FaultConfig {
            transient_rate: 0.5,
            truncate_rate: 0.3,
            seed: 21,
            ..Default::default()
        };
        // Uninterrupted run: 12 fetches.
        let mut baseline = ChaosFetcher::over_graph(&g, config);
        let full: Vec<_> = (0..12)
            .map(|i| baseline.fetch(if i % 2 == 0 { root } else { f }))
            .collect();
        // Interrupted run: 5 fetches, export, rebuild, restore, continue.
        let mut first = ChaosFetcher::over_graph(&g, config);
        let mut resumed_results: Vec<_> = (0..5)
            .map(|i| first.fetch(if i % 2 == 0 { root } else { f }))
            .collect();
        let exported = first.export_attempts();
        drop(first);
        let mut second = ChaosFetcher::over_graph(&g, config);
        second.restore_attempts(&exported);
        resumed_results.extend((5..12).map(|i| second.fetch(if i % 2 == 0 { root } else { f })));
        assert_eq!(full, resumed_results);
    }

    #[test]
    fn latency_stays_in_range() {
        let (g, root, _) = two_page_site();
        let config = FaultConfig {
            latency_ms: (5, 9),
            ..Default::default()
        };
        let mut chaos = ChaosFetcher::over_graph(&g, config);
        for _ in 0..50 {
            let resp = chaos.fetch(root).expect("fetch succeeds");
            assert!((5..=9).contains(&resp.latency_ms), "{}", resp.latency_ms);
        }
    }
}
