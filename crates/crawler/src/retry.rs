//! Retry policy (exponential backoff with deterministic jitter) and the
//! simulated clock the resilient crawler schedules against.

use crate::fetch::splitmix64;

/// How failed fetches are retried.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Retries after the first attempt (so a page gets at most
    /// `max_retries + 1` attempts before it is abandoned).
    pub max_retries: u32,
    /// Backoff before the first retry, in milliseconds.
    pub base_delay_ms: u64,
    /// Backoff ceiling, in milliseconds.
    pub max_delay_ms: u64,
    /// Jitter amplitude in [0, 1]: each delay is scaled by a deterministic
    /// factor drawn from `[1 - jitter, 1 + jitter]` to de-synchronize
    /// retry storms.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_delay_ms: 100,
            max_delay_ms: 10_000,
            jitter: 0.5,
        }
    }
}

impl RetryPolicy {
    /// The delay before retry number `retry` (0-based), jittered by a hash
    /// of `salt` so equal retry counts do not synchronize across pages.
    pub fn backoff_delay_ms(&self, retry: u32, salt: u64) -> u64 {
        let exp = self
            .base_delay_ms
            .saturating_mul(1u64.checked_shl(retry).unwrap_or(u64::MAX))
            .min(self.max_delay_ms);
        let unit = (splitmix64(salt ^ u64::from(retry)) >> 11) as f64 / (1u64 << 53) as f64;
        let factor = 1.0 - self.jitter + 2.0 * self.jitter * unit;
        ((exp as f64 * factor) as u64).min(self.max_delay_ms).max(1)
    }
}

/// A simulated monotonic clock in milliseconds. The crawler advances it by
/// fetch latencies, backoff waits and breaker cooldowns, so timing-driven
/// behavior is fully deterministic and testable.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimClock {
    now_ms: u64,
}

impl SimClock {
    /// A clock at t = 0.
    pub fn new() -> Self {
        SimClock::default()
    }

    /// Current simulated time in milliseconds.
    pub fn now_ms(self) -> u64 {
        self.now_ms
    }

    /// Advance by `delta` milliseconds.
    pub fn advance(&mut self, delta_ms: u64) {
        self.now_ms = self.now_ms.saturating_add(delta_ms);
    }

    /// Advance to an absolute time (no-op if already past it).
    pub fn advance_to(&mut self, t_ms: u64) {
        self.now_ms = self.now_ms.max(t_ms);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let policy = RetryPolicy {
            jitter: 0.0,
            ..Default::default()
        };
        assert_eq!(policy.backoff_delay_ms(0, 1), 100);
        assert_eq!(policy.backoff_delay_ms(1, 1), 200);
        assert_eq!(policy.backoff_delay_ms(2, 1), 400);
        assert_eq!(policy.backoff_delay_ms(20, 1), policy.max_delay_ms);
        // Shift overflow saturates instead of panicking.
        assert_eq!(policy.backoff_delay_ms(100, 1), policy.max_delay_ms);
    }

    #[test]
    fn jitter_bounds_and_determinism() {
        let policy = RetryPolicy {
            jitter: 0.5,
            ..Default::default()
        };
        for salt in 0..200u64 {
            let d = policy.backoff_delay_ms(1, salt);
            assert!(
                (100..=300).contains(&d),
                "retry 1 delay {d} out of [100, 300]"
            );
            assert_eq!(
                d,
                policy.backoff_delay_ms(1, salt),
                "jitter must be deterministic"
            );
        }
        // Different salts actually spread.
        let spread: std::collections::HashSet<u64> =
            (0..50).map(|s| policy.backoff_delay_ms(1, s)).collect();
        assert!(spread.len() > 10, "jitter too clumped: {spread:?}");
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut clock = SimClock::new();
        clock.advance(10);
        clock.advance_to(5); // already past, no-op
        assert_eq!(clock.now_ms(), 10);
        clock.advance_to(25);
        assert_eq!(clock.now_ms(), 25);
        clock.advance(u64::MAX); // saturates
        assert_eq!(clock.now_ms(), u64::MAX);
    }
}
