//! # cafc-crawler
//!
//! A form-focused crawler over the in-memory web graph — the acquisition
//! substrate of the pipeline. Half of the paper's corpus "was automatically
//! retrieved by a Web crawler \[3\]"; this crate reproduces that stage
//! end-to-end against the synthetic web: it fetches page HTML, parses it,
//! resolves `href`s against the page URL, walks breadth-first, and collects
//! the pages whose forms the searchable-form classifier accepts.
//!
//! The crawler only sees what a real one would: HTML bytes and URLs. Link
//! resolution goes through [`cafc_webgraph::Url::resolve`], so relative,
//! host-relative and absolute links all work; URLs that resolve to nothing
//! in the graph behave like dead links.

#![warn(missing_docs)]

use cafc_classify::searchable_forms;
use cafc_html::parse;
use cafc_webgraph::{PageId, WebGraph};
use std::collections::VecDeque;

/// Crawl limits.
#[derive(Debug, Clone, Copy)]
pub struct CrawlConfig {
    /// Stop after visiting this many pages.
    pub max_pages: usize,
    /// Maximum link depth from the seed (0 = seed only).
    pub max_depth: usize,
}

impl Default for CrawlConfig {
    fn default() -> Self {
        CrawlConfig { max_pages: 100_000, max_depth: 16 }
    }
}

/// Crawl outcome.
#[derive(Debug, Clone)]
pub struct CrawlResult {
    /// Pages fetched (had HTML), in visit order.
    pub visited: Vec<PageId>,
    /// Pages with at least one searchable form, in visit order.
    pub searchable_form_pages: Vec<PageId>,
    /// Pages whose only forms were rejected by the classifier.
    pub rejected_form_pages: Vec<PageId>,
    /// Links that resolved to URLs absent from the graph (dead links).
    pub dead_links: usize,
}

/// Breadth-first crawl from `seed`.
pub fn crawl(graph: &WebGraph, seed: PageId, config: &CrawlConfig) -> CrawlResult {
    let mut result = CrawlResult {
        visited: Vec::new(),
        searchable_form_pages: Vec::new(),
        rejected_form_pages: Vec::new(),
        dead_links: 0,
    };
    let mut seen = vec![false; graph.len()];
    let mut queue: VecDeque<(PageId, usize)> = VecDeque::new();
    seen[seed.index()] = true;
    queue.push_back((seed, 0));

    while let Some((page, depth)) = queue.pop_front() {
        if result.visited.len() >= config.max_pages {
            break;
        }
        let Some(html) = graph.html(page) else {
            continue; // placeholder page without content: nothing to fetch
        };
        result.visited.push(page);
        let doc = parse(html);

        // Classify the page's forms.
        let all_forms = cafc_html::extract_forms(&doc);
        if !all_forms.is_empty() {
            let searchable = searchable_forms(&doc);
            if !searchable.is_empty() {
                result.searchable_form_pages.push(page);
            } else {
                result.rejected_form_pages.push(page);
            }
        }

        if depth >= config.max_depth {
            continue;
        }
        // Extract and resolve links.
        let base = graph.url(page);
        for node in doc.elements_named("a") {
            let Some(href) = doc.attr(node, "href") else { continue };
            let Some(url) = base.resolve(href) else { continue };
            match graph.page_id(&url) {
                Some(target) => {
                    if !seen[target.index()] {
                        seen[target.index()] = true;
                        queue.push_back((target, depth + 1));
                    }
                }
                None => result.dead_links += 1,
            }
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use cafc_corpus::{generate, CorpusConfig};
    use cafc_webgraph::Url;

    fn url(s: &str) -> Url {
        Url::parse(s).expect("test url parses")
    }

    #[test]
    fn crawls_a_hand_built_site() {
        let mut g = WebGraph::new();
        let home = g.add_page(
            url("http://a.com/"),
            r#"<a href="/search.html">search</a><a href="/dead.html">x</a>"#.into(),
        );
        let search = g.add_page(
            url("http://a.com/search.html"),
            r#"<form action="/s"><input name=q><input type=submit value=Search></form>"#.into(),
        );
        let result = crawl(&g, home, &CrawlConfig::default());
        assert_eq!(result.visited, vec![home, search]);
        assert_eq!(result.searchable_form_pages, vec![search]);
        assert_eq!(result.dead_links, 1);
    }

    #[test]
    fn respects_depth_limit() {
        let mut g = WebGraph::new();
        let a = g.add_page(url("http://a.com/"), r#"<a href="http://b.com/">b</a>"#.into());
        let b = g.add_page(url("http://b.com/"), r#"<a href="http://c.com/">c</a>"#.into());
        let c = g.add_page(url("http://c.com/"), "end".into());
        let shallow = crawl(&g, a, &CrawlConfig { max_depth: 1, ..Default::default() });
        assert_eq!(shallow.visited, vec![a, b]);
        let deep = crawl(&g, a, &CrawlConfig::default());
        assert_eq!(deep.visited, vec![a, b, c]);
    }

    #[test]
    fn respects_page_limit() {
        let mut g = WebGraph::new();
        let mut prev_html = String::new();
        for i in (0..10).rev() {
            prev_html = format!(r#"<a href="http://s{i}.com/">next</a>{prev_html}"#);
        }
        let hub = g.add_page(url("http://hub.com/"), prev_html);
        for i in 0..10 {
            g.add_page(url(&format!("http://s{i}.com/")), "x".into());
        }
        let result = crawl(&g, hub, &CrawlConfig { max_pages: 4, ..Default::default() });
        assert_eq!(result.visited.len(), 4);
    }

    #[test]
    fn rejects_non_searchable_pages() {
        let mut g = WebGraph::new();
        let login = g.add_page(
            url("http://a.com/login"),
            r#"<form action="/login" method=post><input name=u>
            <input type=password name=p><input type=submit value=Login></form>"#
                .into(),
        );
        let result = crawl(&g, login, &CrawlConfig::default());
        assert_eq!(result.rejected_form_pages, vec![login]);
        assert!(result.searchable_form_pages.is_empty());
    }

    #[test]
    fn full_synthetic_web_crawl_finds_most_form_pages() {
        let web = generate(&CorpusConfig::small(99));
        let result = crawl(&web.graph, web.portal, &CrawlConfig::default());
        // Every form page whose site root is linked from the portal is
        // reachable; the classifier should accept the searchable ones.
        let found = result.searchable_form_pages.len();
        let expected = web.form_pages.len();
        assert!(
            found as f64 >= expected as f64 * 0.9,
            "crawler found {found} of {expected} searchable form pages"
        );
        // Non-searchable pages must overwhelmingly be rejected, not accepted.
        let accepted_bad = web
            .non_searchable
            .iter()
            .filter(|p| result.searchable_form_pages.contains(p))
            .count();
        assert!(
            accepted_bad * 10 <= web.non_searchable.len(),
            "{accepted_bad} of {} non-searchable pages misclassified",
            web.non_searchable.len()
        );
    }

    #[test]
    fn seed_without_html_yields_empty_crawl() {
        let mut g = WebGraph::new();
        let ghost = g.intern(url("http://ghost.com/"));
        let result = crawl(&g, ghost, &CrawlConfig::default());
        assert!(result.visited.is_empty());
    }
}
