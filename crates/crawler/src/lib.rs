//! # cafc-crawler
//!
//! A form-focused crawler over the in-memory web graph — the acquisition
//! substrate of the pipeline. Half of the paper's corpus "was automatically
//! retrieved by a Web crawler \[3\]"; this crate reproduces that stage
//! end-to-end against the synthetic web: it fetches page HTML, parses it,
//! resolves `href`s against the page URL, walks breadth-first, and collects
//! the pages whose forms the searchable-form classifier accepts.
//!
//! The crawler only sees what a real one would: HTML bytes and URLs. Link
//! resolution goes through [`cafc_webgraph::Url::resolve`], so relative,
//! host-relative and absolute links all work; URLs that resolve to nothing
//! in the graph behave like dead links.
//!
//! Unlike the idealized BFS it grew from, the crawler is written against a
//! fault model ([`Fetcher`]) and degrades gracefully: transient fetch
//! failures are retried with exponential backoff and jitter on a simulated
//! clock ([`RetryPolicy`], [`SimClock`]), hosts that keep failing are shut
//! off by per-host circuit breakers ([`BreakerConfig`]) and revisited once
//! their cooldown elapses, and pages the crawler gives up on land on a
//! dead-letter list with a reason. [`CrawlStats`] accounts for every
//! attempt: `attempts = successes + retries + abandoned`. Use
//! [`ChaosFetcher`] to inject seeded, reproducible faults, or
//! [`GraphFetcher`] for the ideal web — with no faults, [`crawl_resilient`]
//! visits exactly the pages the plain BFS [`crawl`] does.

#![warn(missing_docs)]

mod breaker;
mod fetch;
mod resume;
mod retry;
mod stats;

pub use breaker::{BreakerConfig, BreakerSnapshot, BreakerState, CircuitBreaker, HostBreakers};
pub use fetch::{ChaosFetcher, FaultConfig, FetchError, FetchResponse, Fetcher, GraphFetcher};
pub use resume::crawl_resumable;
pub(crate) use resume::CrawlCheckpointer;
pub use retry::{RetryPolicy, SimClock};
pub use stats::{AbandonReason, CrawlStats, DeadLetter};

use cafc_classify::searchable_forms;
use cafc_html::parse;
use cafc_obs::Obs;
use cafc_webgraph::{PageId, WebGraph};
use std::collections::{HashMap, VecDeque};

/// Histogram bucket upper bounds (simulated milliseconds) for the
/// `crawl.backoff_wait_ms` metric.
const BACKOFF_BUCKETS_MS: [f64; 8] = [
    50.0, 100.0, 250.0, 500.0, 1_000.0, 2_500.0, 5_000.0, 10_000.0,
];

/// Simulated cost of a failed fetch attempt (a timeout or reset is not
/// free), charged to the clock so failures also consume crawl time.
const FAILED_FETCH_COST_MS: u64 = 150;

/// Crawl limits.
#[derive(Debug, Clone, Copy)]
pub struct CrawlConfig {
    /// Stop after visiting this many pages.
    pub max_pages: usize,
    /// Maximum link depth from the seed (0 = seed only).
    pub max_depth: usize,
}

impl Default for CrawlConfig {
    fn default() -> Self {
        CrawlConfig {
            max_pages: 100_000,
            max_depth: 16,
        }
    }
}

/// Full configuration of the resilient crawler.
#[derive(Debug, Clone, Copy)]
pub struct ResilientConfig {
    /// Visit limits.
    pub crawl: CrawlConfig,
    /// Backoff policy for transient failures.
    pub retry: RetryPolicy,
    /// Per-host circuit-breaker tuning.
    pub breaker: BreakerConfig,
    /// How many times a page may be parked behind an open breaker before
    /// it is dead-lettered.
    pub max_parks: u32,
}

impl Default for ResilientConfig {
    fn default() -> Self {
        ResilientConfig {
            crawl: CrawlConfig::default(),
            retry: RetryPolicy::default(),
            breaker: BreakerConfig::default(),
            max_parks: 2,
        }
    }
}

impl ResilientConfig {
    /// Defaults with explicit crawl limits.
    pub fn with_limits(crawl: CrawlConfig) -> Self {
        ResilientConfig {
            crawl,
            ..Default::default()
        }
    }
}

/// Crawl outcome.
#[derive(Debug, Clone)]
pub struct CrawlResult {
    /// Pages fetched (had HTML), in visit order.
    pub visited: Vec<PageId>,
    /// Pages with at least one searchable form, in visit order.
    pub searchable_form_pages: Vec<PageId>,
    /// Pages whose only forms were rejected by the classifier.
    pub rejected_form_pages: Vec<PageId>,
    /// Links that resolved to URLs absent from the graph (dead links).
    pub dead_links: usize,
}

/// Outcome of a resilient crawl: the pages plus the fault accounting.
#[derive(Debug, Clone)]
pub struct ResilientCrawlOutcome {
    /// What was crawled.
    pub pages: CrawlResult,
    /// How the crawl went: attempts, retries, breaker events, dead letter.
    pub stats: CrawlStats,
}

/// Breadth-first crawl from `seed` over the ideal (fault-free) fetcher.
///
/// This is the classic entry point; it is a thin wrapper over
/// [`crawl_resilient`] with a [`GraphFetcher`], and visits exactly the
/// same pages in the same order as the original BFS.
pub fn crawl(graph: &WebGraph, seed: PageId, config: &CrawlConfig) -> CrawlResult {
    let mut fetcher = GraphFetcher::new(graph);
    crawl_resilient(
        graph,
        &mut fetcher,
        seed,
        &ResilientConfig::with_limits(*config),
    )
    .pages
}

/// A queued unit of crawl work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Job {
    pub(crate) page: PageId,
    pub(crate) depth: usize,
}

/// The complete mutable state of a resilient crawl — everything that must
/// survive a crash for the crawl to resume bit-identically (the fetcher's
/// own state travels separately via [`Fetcher::export_attempts`]).
pub(crate) struct CrawlState {
    pub(crate) pages: CrawlResult,
    pub(crate) stats: CrawlStats,
    pub(crate) clock: SimClock,
    pub(crate) breakers: HostBreakers,
    pub(crate) seen: Vec<bool>,
    pub(crate) park_counts: HashMap<PageId, u32>,
    pub(crate) parked: Vec<Job>,
    pub(crate) queue: VecDeque<Job>,
}

impl CrawlState {
    /// The state a fresh crawl starts from: the seed queued at depth 0.
    pub(crate) fn initial(graph: &WebGraph, seed: PageId, config: &ResilientConfig) -> CrawlState {
        let mut seen = vec![false; graph.len()];
        let mut queue = VecDeque::new();
        seen[seed.index()] = true;
        queue.push_back(Job {
            page: seed,
            depth: 0,
        });
        CrawlState {
            pages: CrawlResult {
                visited: Vec::new(),
                searchable_form_pages: Vec::new(),
                rejected_form_pages: Vec::new(),
                dead_links: 0,
            },
            stats: CrawlStats::default(),
            clock: SimClock::new(),
            breakers: HostBreakers::new(config.breaker),
            seen,
            park_counts: HashMap::new(),
            parked: Vec::new(),
            queue,
        }
    }
}

/// Breadth-first crawl from `seed` through an arbitrary [`Fetcher`], with
/// retries, per-host circuit breakers, parking, and full accounting.
///
/// `graph` supplies URL identity and link resolution (what a real crawler
/// gets from DNS and its frontier); page *content* only ever arrives
/// through `fetcher`.
pub fn crawl_resilient<F: Fetcher>(
    graph: &WebGraph,
    fetcher: &mut F,
    seed: PageId,
    config: &ResilientConfig,
) -> ResilientCrawlOutcome {
    crawl_resilient_obs(graph, fetcher, seed, config, &Obs::disabled())
}

/// [`crawl_resilient`] with instrumentation: the run executes under a
/// `crawl` span, every backoff wait lands in the `crawl.backoff_wait_ms`
/// histogram, and the final [`CrawlStats`] are mirrored into `crawl.*`
/// counters (attempts, successes, retries, error classes, breaker events,
/// parking, dead letters) plus a `crawl.sim_elapsed_ms` gauge. The crawl
/// itself is bit-identical whether or not a sink is installed.
pub fn crawl_resilient_obs<F: Fetcher>(
    graph: &WebGraph,
    fetcher: &mut F,
    seed: PageId,
    config: &ResilientConfig,
    obs: &Obs,
) -> ResilientCrawlOutcome {
    let state = CrawlState::initial(graph, seed, config);
    match crawl_driver(graph, fetcher, config, obs, state, None) {
        Ok(outcome) => outcome,
        // Unreachable: with no checkpointer the driver performs no store
        // I/O and therefore cannot fail. Degrade to an empty outcome
        // rather than panicking.
        Err(_) => ResilientCrawlOutcome {
            pages: CrawlResult {
                visited: Vec::new(),
                searchable_form_pages: Vec::new(),
                rejected_form_pages: Vec::new(),
                dead_links: 0,
            },
            stats: CrawlStats::default(),
        },
    }
}

/// The crawl loop proper, shared by the plain entry points (no
/// checkpointer) and [`crawl_resumable`] (checkpointer journals dead
/// letters, snapshots at the configured cadence, and replays journaled
/// jobs instead of re-fetching them).
pub(crate) fn crawl_driver<F: Fetcher>(
    graph: &WebGraph,
    fetcher: &mut F,
    config: &ResilientConfig,
    obs: &Obs,
    state: CrawlState,
    mut ckpt: Option<&mut CrawlCheckpointer<'_>>,
) -> Result<ResilientCrawlOutcome, cafc_store::StoreError> {
    let crawl_span = obs.span("crawl");
    let CrawlState {
        mut pages,
        mut stats,
        mut clock,
        mut breakers,
        mut seen,
        mut park_counts,
        mut parked,
        mut queue,
    } = state;

    // Park `job` to wait out an open breaker, or dead-letter it once its
    // parking budget is spent. Returns true when parked.
    let park_or_abandon = |job: Job,
                           attempts: u32,
                           park_counts: &mut HashMap<PageId, u32>,
                           parked: &mut Vec<Job>,
                           stats: &mut CrawlStats|
     -> bool {
        let count = park_counts.entry(job.page).or_insert(0);
        if *count >= config.max_parks {
            stats.dead_letter.push(DeadLetter {
                url: graph.url(job.page).clone(),
                reason: AbandonReason::HostCircuitOpen,
                attempts,
            });
            false
        } else {
            *count += 1;
            stats.parked += 1;
            parked.push(job);
            true
        }
    };

    'crawl: loop {
        while let Some(job) = queue.pop_front() {
            if pages.visited.len() >= config.crawl.max_pages {
                break 'crawl;
            }

            // A journaled dead-letter job from the interrupted run: apply
            // its recorded effects instead of re-fetching — permanently
            // failed pages are never re-attempted across a resume.
            if let Some(c) = ckpt.as_mut() {
                if c.replay_job(&job, graph, fetcher, &mut stats, &mut clock, &mut breakers)? {
                    continue;
                }
            }

            'job: {
                let host = graph.url(job.page).host().to_owned();

                if !breakers.breaker(&host).allow(clock.now_ms()) {
                    // No attempt is made, so nothing enters the accounting
                    // identity; the page waits for the breaker or dies.
                    stats.breaker_rejections += 1;
                    park_or_abandon(job, 0, &mut park_counts, &mut parked, &mut stats);
                    break 'job;
                }

                // Fetch with inline backoff-retries. Each attempt is
                // classified exactly once: success, retry (followed up),
                // or abandoned.
                let mut attempt: u32 = 0;
                let response = loop {
                    stats.attempts += 1;
                    attempt += 1;
                    match fetcher.fetch(job.page) {
                        Ok(resp) => {
                            clock.advance(resp.latency_ms);
                            breakers.breaker(&host).record_success();
                            stats.successes += 1;
                            break Some(resp);
                        }
                        Err(err) if err.is_transient() => {
                            stats.transient_failures += 1;
                            clock.advance(FAILED_FETCH_COST_MS);
                            if breakers.breaker(&host).record_failure(clock.now_ms()) {
                                stats.breaker_trips += 1;
                            }
                            if breakers.breaker(&host).state() == BreakerState::Open {
                                // The host just got shut off; this page
                                // waits for the cooldown rather than
                                // burning retries.
                                if park_or_abandon(
                                    job,
                                    attempt,
                                    &mut park_counts,
                                    &mut parked,
                                    &mut stats,
                                ) {
                                    stats.retries += 1;
                                } else {
                                    stats.abandoned += 1;
                                }
                                break None;
                            }
                            if attempt > config.retry.max_retries {
                                stats.abandoned += 1;
                                stats.dead_letter.push(DeadLetter {
                                    url: graph.url(job.page).clone(),
                                    reason: AbandonReason::RetriesExhausted,
                                    attempts: attempt,
                                });
                                break None;
                            }
                            stats.retries += 1;
                            let salt = u64::from(job.page.0) ^ (stats.attempts << 20);
                            let wait = config.retry.backoff_delay_ms(attempt - 1, salt);
                            obs.observe_in(
                                "crawl.backoff_wait_ms",
                                &BACKOFF_BUCKETS_MS,
                                wait as f64,
                            );
                            clock.advance(wait);
                        }
                        Err(_permanent) => {
                            stats.permanent_failures += 1;
                            clock.advance(FAILED_FETCH_COST_MS);
                            stats.abandoned += 1;
                            stats.dead_letter.push(DeadLetter {
                                url: graph.url(job.page).clone(),
                                reason: AbandonReason::Permanent,
                                attempts: attempt,
                            });
                            break None;
                        }
                    }
                };
                let Some(response) = response else { break 'job };

                // Redirects land on another page: visit it instead (once).
                let landed = response.page;
                if response.redirected {
                    stats.redirects_followed += 1;
                    if landed != job.page {
                        if seen[landed.index()] {
                            break 'job;
                        }
                        seen[landed.index()] = true;
                    }
                }
                if response.truncated {
                    stats.truncated_pages += 1;
                }

                pages.visited.push(landed);
                let doc = parse(&response.html);

                // Classify the page's forms.
                let all_forms = cafc_html::extract_forms(&doc);
                if !all_forms.is_empty() {
                    let searchable = searchable_forms(&doc);
                    if !searchable.is_empty() {
                        pages.searchable_form_pages.push(landed);
                    } else {
                        pages.rejected_form_pages.push(landed);
                    }
                }

                if job.depth >= config.crawl.max_depth {
                    break 'job;
                }
                // Extract and resolve links against the *landed* page's URL.
                let base = graph.url(landed);
                for node in doc.elements_named("a") {
                    let Some(href) = doc.attr(node, "href") else {
                        continue;
                    };
                    let Some(url) = base.resolve(href) else {
                        continue;
                    };
                    match graph.page_id(&url) {
                        Some(target) => {
                            if !seen[target.index()] {
                                seen[target.index()] = true;
                                queue.push_back(Job {
                                    page: target,
                                    depth: job.depth + 1,
                                });
                            }
                        }
                        None => pages.dead_links += 1,
                    }
                }
            }

            // Job complete (however it ended): journal any dead letter it
            // produced and snapshot at the configured cadence.
            if let Some(c) = ckpt.as_mut() {
                c.after_job(
                    &job,
                    graph,
                    fetcher,
                    &pages,
                    &stats,
                    &clock,
                    &breakers,
                    &seen,
                    &park_counts,
                    &parked,
                    &queue,
                )?;
            }
        }

        // The ready queue is drained. If pages are parked behind open
        // breakers, wait (on the simulated clock) for the earliest breaker
        // to become probeable and try them again.
        if parked.is_empty() || pages.visited.len() >= config.crawl.max_pages {
            break;
        }
        let earliest_reopen = parked
            .iter()
            .filter_map(|job| breakers.get(graph.url(job.page).host())?.reopen_at_ms())
            .min();
        if let Some(t) = earliest_reopen {
            clock.advance_to(t);
        }
        for job in parked.drain(..) {
            queue.push_back(job);
        }
    }

    // The crawl is complete: verify no journaled work went unconsumed
    // (leftovers mean the journal describes a different run) and persist a
    // final snapshot so a `--resume` of a finished crawl replays nothing.
    if let Some(c) = ckpt.as_mut() {
        c.finish(
            graph,
            fetcher,
            &pages,
            &stats,
            &clock,
            &breakers,
            &seen,
            &park_counts,
            &parked,
            &queue,
        )?;
    }

    stats.sim_elapsed_ms = clock.now_ms();
    stats.breaker_trips = breakers.total_trips();
    stats.abandoned_hosts = breakers.open_hosts();
    drop(crawl_span);
    if obs.is_enabled() {
        obs.add("crawl.attempts", stats.attempts);
        obs.add("crawl.successes", stats.successes);
        obs.add("crawl.retries", stats.retries);
        obs.add("crawl.errors.transient", stats.transient_failures);
        obs.add("crawl.errors.permanent", stats.permanent_failures);
        obs.add("crawl.abandoned", stats.abandoned);
        obs.add("crawl.breaker.trips", stats.breaker_trips);
        obs.add("crawl.breaker.rejections", stats.breaker_rejections);
        obs.add("crawl.parked", stats.parked);
        obs.add("crawl.redirects_followed", stats.redirects_followed);
        obs.add("crawl.truncated_pages", stats.truncated_pages);
        obs.add("crawl.dead_letters", stats.dead_letter.len() as u64);
        obs.add("crawl.pages_visited", pages.visited.len() as u64);
        obs.add(
            "crawl.searchable_form_pages",
            pages.searchable_form_pages.len() as u64,
        );
        obs.gauge("crawl.sim_elapsed_ms", stats.sim_elapsed_ms as f64);
    }
    Ok(ResilientCrawlOutcome { pages, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cafc_corpus::{generate, CorpusConfig};
    use cafc_webgraph::Url;

    fn url(s: &str) -> Url {
        Url::parse(s).expect("test url parses")
    }

    #[test]
    fn crawls_a_hand_built_site() {
        let mut g = WebGraph::new();
        let home = g.add_page(
            url("http://a.com/"),
            r#"<a href="/search.html">search</a><a href="/dead.html">x</a>"#.into(),
        );
        let search = g.add_page(
            url("http://a.com/search.html"),
            r#"<form action="/s"><input name=q><input type=submit value=Search></form>"#.into(),
        );
        let result = crawl(&g, home, &CrawlConfig::default());
        assert_eq!(result.visited, vec![home, search]);
        assert_eq!(result.searchable_form_pages, vec![search]);
        assert_eq!(result.dead_links, 1);
    }

    #[test]
    fn respects_depth_limit() {
        let mut g = WebGraph::new();
        let a = g.add_page(
            url("http://a.com/"),
            r#"<a href="http://b.com/">b</a>"#.into(),
        );
        let b = g.add_page(
            url("http://b.com/"),
            r#"<a href="http://c.com/">c</a>"#.into(),
        );
        let c = g.add_page(url("http://c.com/"), "end".into());
        let shallow = crawl(
            &g,
            a,
            &CrawlConfig {
                max_depth: 1,
                ..Default::default()
            },
        );
        assert_eq!(shallow.visited, vec![a, b]);
        let deep = crawl(&g, a, &CrawlConfig::default());
        assert_eq!(deep.visited, vec![a, b, c]);
    }

    #[test]
    fn respects_page_limit() {
        let mut g = WebGraph::new();
        let mut prev_html = String::new();
        for i in (0..10).rev() {
            prev_html = format!(r#"<a href="http://s{i}.com/">next</a>{prev_html}"#);
        }
        let hub = g.add_page(url("http://hub.com/"), prev_html);
        for i in 0..10 {
            g.add_page(url(&format!("http://s{i}.com/")), "x".into());
        }
        let result = crawl(
            &g,
            hub,
            &CrawlConfig {
                max_pages: 4,
                ..Default::default()
            },
        );
        assert_eq!(result.visited.len(), 4);
    }

    #[test]
    fn rejects_non_searchable_pages() {
        let mut g = WebGraph::new();
        let login = g.add_page(
            url("http://a.com/login"),
            r#"<form action="/login" method=post><input name=u>
            <input type=password name=p><input type=submit value=Login></form>"#
                .into(),
        );
        let result = crawl(&g, login, &CrawlConfig::default());
        assert_eq!(result.rejected_form_pages, vec![login]);
        assert!(result.searchable_form_pages.is_empty());
    }

    #[test]
    fn full_synthetic_web_crawl_finds_most_form_pages() {
        let web = generate(&CorpusConfig::small(99));
        let result = crawl(&web.graph, web.portal, &CrawlConfig::default());
        // Every form page whose site root is linked from the portal is
        // reachable; the classifier should accept the searchable ones.
        let found = result.searchable_form_pages.len();
        let expected = web.form_pages.len();
        assert!(
            found as f64 >= expected as f64 * 0.9,
            "crawler found {found} of {expected} searchable form pages"
        );
        // Non-searchable pages must overwhelmingly be rejected, not accepted.
        let accepted_bad = web
            .non_searchable
            .iter()
            .filter(|p| result.searchable_form_pages.contains(p))
            .count();
        assert!(
            accepted_bad * 10 <= web.non_searchable.len(),
            "{accepted_bad} of {} non-searchable pages misclassified",
            web.non_searchable.len()
        );
    }

    #[test]
    fn seed_without_html_yields_empty_crawl() {
        let mut g = WebGraph::new();
        let ghost = g.intern(url("http://ghost.com/"));
        let result = crawl(&g, ghost, &CrawlConfig::default());
        assert!(result.visited.is_empty());
    }

    // ---- resilient-crawl behavior --------------------------------------

    #[test]
    fn zero_fault_chaos_crawl_matches_plain_bfs_exactly() {
        let web = generate(&CorpusConfig::small(31));
        let plain = crawl(&web.graph, web.portal, &CrawlConfig::default());
        let mut chaos = ChaosFetcher::over_graph(&web.graph, FaultConfig::default());
        let outcome = crawl_resilient(
            &web.graph,
            &mut chaos,
            web.portal,
            &ResilientConfig::default(),
        );
        assert_eq!(outcome.pages.visited, plain.visited);
        assert_eq!(
            outcome.pages.searchable_form_pages,
            plain.searchable_form_pages
        );
        assert_eq!(outcome.pages.rejected_form_pages, plain.rejected_form_pages);
        assert_eq!(outcome.pages.dead_links, plain.dead_links);
        assert_eq!(outcome.stats.retries, 0);
        assert_eq!(outcome.stats.breaker_trips, 0);
        assert!(outcome.stats.is_accounted(), "{}", outcome.stats);
    }

    #[test]
    fn plain_crawl_accounts_placeholders_as_permanent_dead_letters() {
        let mut g = WebGraph::new();
        let home = g.add_page(
            url("http://a.com/"),
            r#"<a href="/x">x</a><a href="http://ghost.com/">g</a>"#.into(),
        );
        g.add_page(url("http://a.com/x"), "x".into());
        g.intern(url("http://ghost.com/"));
        let mut fetcher = GraphFetcher::new(&g);
        let outcome = crawl_resilient(&g, &mut fetcher, home, &ResilientConfig::default());
        assert_eq!(outcome.pages.visited.len(), 2);
        assert_eq!(outcome.stats.abandoned, 1);
        assert_eq!(outcome.stats.abandoned_with(AbandonReason::Permanent), 1);
        assert!(outcome.stats.is_accounted(), "{}", outcome.stats);
    }

    #[test]
    fn transient_faults_are_retried_to_high_recovery() {
        let web = generate(&CorpusConfig::small(37));
        let gold = web.form_page_ids();
        let mut chaos = ChaosFetcher::over_graph(&web.graph, FaultConfig::transient(0.2, 5));
        let outcome = crawl_resilient(
            &web.graph,
            &mut chaos,
            web.portal,
            &ResilientConfig::default(),
        );
        let found = outcome
            .pages
            .searchable_form_pages
            .iter()
            .filter(|p| gold.contains(p))
            .count();
        assert!(
            found as f64 >= gold.len() as f64 * 0.9,
            "recovered only {found}/{} under 20% transient faults\n{}",
            gold.len(),
            outcome.stats,
        );
        assert!(outcome.stats.retries > 0, "20% faults must trigger retries");
        assert!(outcome.stats.is_accounted(), "{}", outcome.stats);
    }

    #[test]
    fn obs_instrumentation_does_not_perturb_crawl() {
        let web = generate(&CorpusConfig::small(37));
        let mut chaos = ChaosFetcher::over_graph(&web.graph, FaultConfig::transient(0.2, 5));
        let plain = crawl_resilient(
            &web.graph,
            &mut chaos,
            web.portal,
            &ResilientConfig::default(),
        );
        let obs = Obs::with_clock(std::sync::Arc::new(cafc_obs::ManualClock::new()));
        let mut chaos = ChaosFetcher::over_graph(&web.graph, FaultConfig::transient(0.2, 5));
        let outcome = crawl_resilient_obs(
            &web.graph,
            &mut chaos,
            web.portal,
            &ResilientConfig::default(),
            &obs,
        );
        assert_eq!(outcome.pages.visited, plain.pages.visited);
        assert_eq!(outcome.stats.attempts, plain.stats.attempts);
        let snap = obs.snapshot();
        let json = snap.render_json();
        assert!(json.contains("\"crawl.attempts\""), "{json}");
        assert!(json.contains("\"crawl.retries\""), "{json}");
        assert!(json.contains("\"crawl.backoff_wait_ms\""), "{json}");
        assert!(json.contains("\"crawl.sim_elapsed_ms\""), "{json}");
    }

    #[test]
    fn certain_failure_dead_letters_everything() {
        let mut g = WebGraph::new();
        let home = g.add_page(url("http://a.com/"), "<a href=\"/b\">b</a>".into());
        g.add_page(url("http://a.com/b"), "b".into());
        let mut chaos = ChaosFetcher::over_graph(&g, FaultConfig::transient(1.0, 3));
        let config = ResilientConfig {
            breaker: BreakerConfig {
                failure_threshold: 100,
                ..Default::default()
            },
            ..Default::default()
        };
        let outcome = crawl_resilient(&g, &mut chaos, home, &config);
        assert!(outcome.pages.visited.is_empty());
        assert_eq!(outcome.stats.successes, 0);
        assert_eq!(
            outcome
                .stats
                .abandoned_with(AbandonReason::RetriesExhausted),
            1
        );
        // Only the seed is ever discovered — its links were never read.
        assert_eq!(outcome.stats.dead_letter.len(), 1);
        assert_eq!(
            outcome.stats.attempts,
            u64::from(config.retry.max_retries) + 1,
            "each page gets max_retries + 1 attempts"
        );
        assert!(outcome.stats.is_accounted(), "{}", outcome.stats);
    }
}
