//! Per-host circuit breakers: a failure budget that stops the crawler from
//! hammering a struggling host, with half-open probing for recovery.
//!
//! The state machine is the classic one:
//!
//! ```text
//!            threshold consecutive failures
//!   Closed ─────────────────────────────────▶ Open
//!     ▲                                        │ cooldown elapses
//!     │  half_open_successes probes succeed    ▼
//!     └──────────────────────────────────── HalfOpen
//!                 (a probe failure reopens immediately)
//! ```
//!
//! Only *transient* failures count toward the budget — a host that answers
//! 404/410 is alive and should not be tripped.

use std::collections::HashMap;

/// Circuit-breaker tuning.
#[derive(Debug, Clone, Copy)]
pub struct BreakerConfig {
    /// Consecutive transient failures on a host before its breaker opens.
    pub failure_threshold: u32,
    /// How long an open breaker rejects fetches, in simulated milliseconds.
    pub cooldown_ms: u64,
    /// Successful half-open probes required to close the breaker again.
    pub half_open_successes: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 5,
            cooldown_ms: 30_000,
            half_open_successes: 2,
        }
    }
}

/// Observable breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Normal operation; failures are being counted.
    Closed,
    /// Rejecting fetches until the cooldown elapses.
    Open,
    /// Cooldown elapsed; probes are allowed through.
    HalfOpen,
}

/// The breaker for one host.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    probe_successes: u32,
    open_until_ms: u64,
    trips: u64,
}

impl CircuitBreaker {
    /// A closed breaker with the given tuning.
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            probe_successes: 0,
            open_until_ms: 0,
            trips: 0,
        }
    }

    /// Whether a fetch may proceed at simulated time `now_ms`. An open
    /// breaker whose cooldown has elapsed transitions to half-open and
    /// admits the caller as a probe.
    pub fn allow(&mut self, now_ms: u64) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                if now_ms >= self.open_until_ms {
                    self.state = BreakerState::HalfOpen;
                    self.probe_successes = 0;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Record a successful fetch.
    pub fn record_success(&mut self) {
        match self.state {
            BreakerState::Closed => self.consecutive_failures = 0,
            BreakerState::HalfOpen => {
                self.probe_successes += 1;
                if self.probe_successes >= self.config.half_open_successes {
                    self.state = BreakerState::Closed;
                    self.consecutive_failures = 0;
                }
            }
            BreakerState::Open => {}
        }
    }

    /// Record a transient fetch failure at `now_ms`. Returns `true` when
    /// this failure tripped the breaker open.
    pub fn record_failure(&mut self, now_ms: u64) -> bool {
        match self.state {
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.config.failure_threshold {
                    self.trip(now_ms);
                    return true;
                }
                false
            }
            BreakerState::HalfOpen => {
                // A failed probe reopens immediately.
                self.trip(now_ms);
                true
            }
            BreakerState::Open => false,
        }
    }

    fn trip(&mut self, now_ms: u64) {
        self.state = BreakerState::Open;
        self.open_until_ms = now_ms.saturating_add(self.config.cooldown_ms);
        self.consecutive_failures = 0;
        self.trips += 1;
    }

    /// Current state (without side effects).
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// When an open breaker becomes probeable again; `None` unless open.
    pub fn reopen_at_ms(&self) -> Option<u64> {
        match self.state {
            BreakerState::Open => Some(self.open_until_ms),
            _ => None,
        }
    }

    /// How many times this breaker has tripped.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Export the full mutable state for checkpointing.
    pub fn export(&self) -> BreakerSnapshot {
        BreakerSnapshot {
            state: self.state,
            consecutive_failures: self.consecutive_failures,
            probe_successes: self.probe_successes,
            open_until_ms: self.open_until_ms,
            trips: self.trips,
        }
    }

    /// Rebuild a breaker from a [`BreakerSnapshot`] under the given tuning.
    pub fn from_snapshot(config: BreakerConfig, snap: &BreakerSnapshot) -> Self {
        CircuitBreaker {
            config,
            state: snap.state,
            consecutive_failures: snap.consecutive_failures,
            probe_successes: snap.probe_successes,
            open_until_ms: snap.open_until_ms,
            trips: snap.trips,
        }
    }
}

/// A checkpointable copy of one breaker's mutable state (the tuning lives
/// in [`BreakerConfig`] and is re-supplied at restore time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerSnapshot {
    /// Current state-machine position.
    pub state: BreakerState,
    /// Consecutive transient failures counted while closed.
    pub consecutive_failures: u32,
    /// Successful probes counted while half-open.
    pub probe_successes: u32,
    /// When an open breaker becomes probeable.
    pub open_until_ms: u64,
    /// Lifetime trip count.
    pub trips: u64,
}

/// The breakers for every host seen by a crawl.
#[derive(Debug, Default)]
pub struct HostBreakers {
    config: BreakerConfig,
    by_host: HashMap<String, CircuitBreaker>,
}

impl HostBreakers {
    /// An empty set with the given per-host tuning.
    pub fn new(config: BreakerConfig) -> Self {
        HostBreakers {
            config,
            by_host: HashMap::new(),
        }
    }

    /// The breaker for `host`, created closed on first sight.
    pub fn breaker(&mut self, host: &str) -> &mut CircuitBreaker {
        let config = self.config;
        self.by_host
            .entry(host.to_owned())
            .or_insert_with(|| CircuitBreaker::new(config))
    }

    /// The breaker for `host`, if it has been seen.
    pub fn get(&self, host: &str) -> Option<&CircuitBreaker> {
        self.by_host.get(host)
    }

    /// Total trips across all hosts.
    pub fn total_trips(&self) -> u64 {
        self.by_host.values().map(CircuitBreaker::trips).sum()
    }

    /// Hosts whose breaker is currently open, sorted for determinism.
    pub fn open_hosts(&self) -> Vec<String> {
        let mut hosts: Vec<String> = self
            .by_host
            .iter()
            .filter(|(_, b)| b.state() == BreakerState::Open)
            .map(|(h, _)| h.clone())
            .collect();
        hosts.sort();
        hosts
    }

    /// Export every host's breaker state, sorted by host for determinism.
    pub fn export(&self) -> Vec<(String, BreakerSnapshot)> {
        let mut snaps: Vec<(String, BreakerSnapshot)> = self
            .by_host
            .iter()
            .map(|(h, b)| (h.clone(), b.export()))
            .collect();
        snaps.sort_by(|a, b| a.0.cmp(&b.0));
        snaps
    }

    /// Restore the set from [`HostBreakers::export`] output, replacing any
    /// existing breakers.
    pub fn import(&mut self, snaps: &[(String, BreakerSnapshot)]) {
        self.by_host = snaps
            .iter()
            .map(|(h, s)| (h.clone(), CircuitBreaker::from_snapshot(self.config, s)))
            .collect();
    }

    /// Overwrite (or create) one host's breaker from a snapshot — journal
    /// replay restores the single breaker a dead-lettered job touched.
    pub fn import_host(&mut self, host: &str, snap: &BreakerSnapshot) {
        self.by_host.insert(
            host.to_owned(),
            CircuitBreaker::from_snapshot(self.config, snap),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 3,
            cooldown_ms: 1_000,
            half_open_successes: 2,
        }
    }

    #[test]
    fn trips_after_threshold_consecutive_failures() {
        let mut b = CircuitBreaker::new(config());
        assert!(!b.record_failure(0));
        assert!(!b.record_failure(1));
        assert!(b.allow(2));
        assert!(b.record_failure(2), "third consecutive failure must trip");
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow(3));
        assert_eq!(b.reopen_at_ms(), Some(1_002));
        assert_eq!(b.trips(), 1);
    }

    #[test]
    fn success_resets_the_failure_count() {
        let mut b = CircuitBreaker::new(config());
        b.record_failure(0);
        b.record_failure(1);
        b.record_success();
        assert!(!b.record_failure(2));
        assert!(!b.record_failure(3));
        assert_eq!(
            b.state(),
            BreakerState::Closed,
            "non-consecutive failures must not trip"
        );
    }

    #[test]
    fn half_open_recovery_closes_after_enough_probes() {
        let mut b = CircuitBreaker::new(config());
        for t in 0..3 {
            b.record_failure(t);
        }
        assert_eq!(b.state(), BreakerState::Open);
        // Cooldown not elapsed: rejected.
        assert!(!b.allow(500));
        // Elapsed: half-open, probes admitted.
        assert!(b.allow(1_500));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record_success();
        assert_eq!(b.state(), BreakerState::HalfOpen, "one probe is not enough");
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn failed_probe_reopens_immediately() {
        let mut b = CircuitBreaker::new(config());
        for t in 0..3 {
            b.record_failure(t);
        }
        assert!(b.allow(2_000));
        assert!(b.record_failure(2_000), "probe failure retrips");
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.reopen_at_ms(), Some(3_000));
        assert_eq!(b.trips(), 2);
    }

    #[test]
    fn export_import_round_trips_mid_cooldown() {
        let mut hosts = HostBreakers::new(config());
        for t in 0..3 {
            hosts.breaker("bad.com").record_failure(t);
        }
        hosts.breaker("ok.com").record_failure(10);
        let snaps = hosts.export();
        assert_eq!(snaps.len(), 2);
        assert_eq!(snaps[0].0, "bad.com", "export is host-sorted");

        let mut restored = HostBreakers::new(config());
        restored.import(&snaps);
        // The restored open breaker rejects and reopens exactly like the
        // original would.
        assert!(!restored.breaker("bad.com").allow(500));
        assert!(restored.breaker("bad.com").allow(1_500));
        assert_eq!(restored.breaker("bad.com").trips(), 1);
        // The closed breaker kept its consecutive-failure count.
        assert!(!restored.breaker("ok.com").record_failure(11));
        assert!(restored.breaker("ok.com").record_failure(12), "3rd trips");
    }

    #[test]
    fn host_breakers_are_independent() {
        let mut hosts = HostBreakers::new(config());
        for t in 0..3 {
            hosts.breaker("bad.com").record_failure(t);
        }
        hosts.breaker("good.com").record_success();
        assert_eq!(hosts.breaker("bad.com").state(), BreakerState::Open);
        assert_eq!(hosts.breaker("good.com").state(), BreakerState::Closed);
        assert_eq!(hosts.total_trips(), 1);
        assert_eq!(hosts.open_hosts(), vec!["bad.com".to_owned()]);
    }
}
