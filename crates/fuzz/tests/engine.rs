//! Integration tests of the fuzz engine itself: the determinism,
//! stability and guidance properties the PR's acceptance criteria name.

use cafc_fuzz::{
    ab_compare, builtin_seeds, execute, minimize, replay, run, Dictionary, FuzzConfig,
};
use cafc_html::coverage::{Coverage, CoverageMap, CoveragePoint};
use cafc_html::Document;

fn cfg(seed: u64, iters: u64) -> FuzzConfig {
    FuzzConfig::new()
        .with_seed(seed)
        .with_budget_iters(iters)
        .with_max_input_len(8 * 1024)
}

/// Same input, same bitmap hash — on the raw map and through a parse.
#[test]
fn coverage_map_is_deterministic() {
    let mut a = CoverageMap::new();
    let mut b = CoverageMap::new();
    for p in [
        CoveragePoint::StartTag,
        CoveragePoint::TagName(9),
        CoveragePoint::AttrDoubleQuoted,
        CoveragePoint::Text,
        CoveragePoint::EndTag,
    ] {
        a.record(p);
        b.record(p);
    }
    assert_eq!(a.bitmap_hash(), b.bitmap_hash());

    for input in builtin_seeds() {
        let hash = |s: &str| {
            let cov = Coverage::enabled();
            let _ = Document::parse_with_coverage(s, &cov);
            cov.snapshot().map(|m| m.bitmap_hash())
        };
        assert_eq!(hash(&input), hash(&input), "coverage unstable on {input:?}");
    }
}

/// The dictionary is a pure function of the parser's grammar tables.
#[test]
fn dictionary_extraction_is_stable() {
    let a = Dictionary::new();
    let b = Dictionary::new();
    assert_eq!(a, b);
    assert!(
        a.atoms().len() > 50,
        "dictionary too small: {}",
        a.atoms().len()
    );
    // The html-side extraction it wraps is stable too.
    assert_eq!(
        cafc_html::syntax_dictionary(),
        cafc_html::syntax_dictionary()
    );
}

/// Two runs under the same seed produce identical reports — corpus
/// additions (content, not just count), coverage hash, and counters.
#[test]
fn scheduler_is_deterministic_under_fixed_seed() {
    let extra = vec!["<table><tr><td>extra seed</table>".to_owned()];
    let a = run(&cfg(42, 120), extra.clone());
    let b = run(&cfg(42, 120), extra);
    assert_eq!(a.iterations, b.iterations);
    assert_eq!(a.executions, b.executions);
    assert_eq!(a.corpus_size, b.corpus_size);
    assert_eq!(a.added, b.added, "corpus additions differ between runs");
    assert_eq!(a.unique_edges, b.unique_edges);
    assert_eq!(a.coverage_hash, b.coverage_hash);
    assert_eq!(a.failures.len(), b.failures.len());
}

/// Different seeds genuinely explore differently (sanity check that the
/// determinism above is not vacuous).
#[test]
fn different_seeds_diverge() {
    let a = run(&cfg(1, 120), vec![]);
    let b = run(&cfg(2, 120), vec![]);
    assert_ne!(
        (a.coverage_hash, a.added.len()),
        (b.coverage_hash, b.added.len()),
        "two seeds produced identical runs"
    );
}

/// Minimization replays to a byte-identical witness: shrinking the same
/// failing input against the same deterministic predicate twice gives the
/// same bytes.
#[test]
fn shrinker_witnesses_are_byte_identical_on_replay() {
    // A synthetic "oracle": inputs containing an unterminated comment
    // after a form tag. Deterministic, content-only — like real oracles.
    let predicate = |s: &str| s.contains("<form") && s.contains("<!--") && !s.contains("-->");
    let noisy = format!(
        "{}<form action=/s>{}<!-- never closed {}",
        "pad ".repeat(40),
        "<input name=q>".repeat(10),
        "tail".repeat(30)
    );
    assert!(predicate(&noisy));
    let w1 = minimize(&noisy, predicate, 4096);
    let w2 = minimize(&noisy, predicate, 4096);
    assert_eq!(w1, w2);
    assert!(predicate(&w1), "witness no longer fails: {w1:?}");
    assert!(
        w1.len() < noisy.len() / 4,
        "barely shrunk: {} bytes",
        w1.len()
    );
}

/// The acceptance criterion: coverage-guided scheduling reaches strictly
/// more unique edges than unguided random mutation at the same budget.
#[test]
fn guided_beats_unguided_at_equal_budget() {
    let (guided, unguided) = ab_compare(&cfg(0xCAFC, 150), vec![]);
    assert_eq!(guided.iterations, unguided.iterations);
    assert!(
        guided.unique_edges > unguided.unique_edges,
        "guided {} edges <= unguided {} edges",
        guided.unique_edges,
        unguided.unique_edges
    );
    // The unguided ablation never grows its corpus.
    assert!(unguided.added.is_empty());
    assert!(!guided.added.is_empty());
}

/// Replaying the built-in seeds through the oracle battery is green, and
/// replay reports a failing entry when one is planted.
#[test]
fn replay_flags_only_failing_entries() {
    let entries: Vec<(String, String)> = builtin_seeds()
        .into_iter()
        .enumerate()
        .map(|(i, s)| (format!("seed-{i}"), s))
        .collect();
    assert!(replay(&entries, 0xCAFC).is_empty());
}

/// Every execution is a pure function of (input, split seed): the engine
/// relies on this to dedup by content hash.
#[test]
fn execution_purity_over_builtin_seeds() {
    for input in builtin_seeds() {
        let a = execute(&input, 7);
        let b = execute(&input, 7);
        assert_eq!(a.coverage.bitmap_hash(), b.coverage.bitmap_hash());
        assert_eq!(a.failures, b.failures);
    }
}
