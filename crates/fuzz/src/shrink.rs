//! Failure minimization over `cafc_check`'s lazy shrink trees.
//!
//! The engine re-uses `cafc_check::Shrink` (the same rose-tree machinery
//! the property runner shrinks with) and walks it greedily: descend into
//! the first child that still fails, repeat until no child fails or the
//! step budget runs out. The candidate set per node is deliberately small
//! and size-ordered — chunk removals of 1/2, 1/4 and 1/8 of the input at a
//! handful of offsets, then single-character removal and character
//! simplification for short inputs — so shrinking a 64 KB input never
//! materializes more than a few dozen candidates per level.
//!
//! Everything is a pure function of the input and the (deterministic)
//! predicate, so replaying a shrink produces a byte-identical witness.

use cafc_check::Shrink;

use crate::oracles::floor_boundary;

/// Maximum candidates proposed per tree node.
const MAX_CANDIDATES: usize = 48;

/// Inputs at or below this many chars also try per-character candidates.
const CHAR_LEVEL_LIMIT: usize = 64;

/// Remove `s[start..end]` (byte offsets on char boundaries).
fn without_range(s: &str, start: usize, end: usize) -> String {
    let mut out = String::with_capacity(s.len() - (end - start));
    out.push_str(&s[..start]);
    out.push_str(&s[end..]);
    out
}

/// Candidate shrinks of `s`, biggest removals first.
fn candidates(s: &str) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    if s.is_empty() {
        return out;
    }
    out.push(String::new());
    // Chunk removals: drop a window of len/2, len/4, len/8 at a few evenly
    // spaced offsets (char-boundary aligned, deduplicated).
    for denom in [2usize, 4, 8] {
        let window = s.len() / denom;
        if window == 0 {
            continue;
        }
        for slot in 0..denom {
            let start = floor_boundary(s, slot * window);
            let end = floor_boundary(s, start + window);
            if end > start && (start > 0 || end < s.len()) {
                out.push(without_range(s, start, end));
            }
        }
    }
    // Character-level candidates for short inputs: drop each char, then
    // simplify each non-'a' char to 'a'.
    if s.chars().count() <= CHAR_LEVEL_LIMIT {
        let boundaries: Vec<(usize, char)> = s.char_indices().collect();
        for &(i, c) in &boundaries {
            out.push(without_range(s, i, i + c.len_utf8()));
        }
        for &(i, c) in &boundaries {
            if c != 'a' {
                let mut simpler = String::with_capacity(s.len());
                simpler.push_str(&s[..i]);
                simpler.push('a');
                simpler.push_str(&s[i + c.len_utf8()..]);
                out.push(simpler);
            }
        }
    }
    out.retain(|c| c != s);
    out.dedup();
    out.truncate(MAX_CANDIDATES);
    out
}

/// The lazy shrink tree rooted at `s`.
pub fn shrink_tree(s: String) -> Shrink<String> {
    Shrink::node(s.clone(), move || {
        candidates(&s).into_iter().map(shrink_tree).collect()
    })
}

/// Greedily minimize `input` against `fails` (true = still failing),
/// spending at most `max_steps` predicate evaluations. Returns the
/// smallest failing input found — `input` itself if nothing smaller fails.
pub fn minimize(input: &str, fails: impl Fn(&str) -> bool, max_steps: usize) -> String {
    let mut current = shrink_tree(input.to_owned());
    let mut steps = 0usize;
    loop {
        let mut advanced = false;
        for child in current.children() {
            if steps >= max_steps {
                return current.into_value();
            }
            steps += 1;
            if fails(child.value()) {
                current = child;
                advanced = true;
                break;
            }
        }
        if !advanced {
            return current.into_value();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimize_finds_the_smallest_witness() {
        // Predicate: input contains "<script". Minimal witness is exactly it.
        let noisy = format!("{}<script>{}", "x".repeat(200), "y".repeat(200));
        let min = minimize(&noisy, |s| s.contains("<script"), 10_000);
        assert_eq!(min, "<script");
    }

    #[test]
    fn minimize_is_deterministic() {
        let noisy = format!("{}&#x0;{}", "a".repeat(100), "b".repeat(100));
        let fails = |s: &str| s.contains("&#");
        assert_eq!(
            minimize(&noisy, fails, 5_000),
            minimize(&noisy, fails, 5_000)
        );
    }

    #[test]
    fn minimize_respects_the_step_budget() {
        let input = "abcdef".repeat(100);
        // Budget 0: no candidates evaluated, input returned unchanged.
        assert_eq!(minimize(&input, |_| true, 0), input);
    }

    #[test]
    fn candidates_stay_on_char_boundaries() {
        let s = "é漢💣<p>aé";
        for c in candidates(s) {
            // Constructing the String would have panicked on a bad slice;
            // also confirm it never grows (simplification keeps length,
            // removal shrinks it).
            assert!(c.len() <= s.len());
            assert_ne!(c, s);
        }
    }

    #[test]
    fn non_failing_input_is_returned_as_is() {
        assert_eq!(minimize("hello", |_| false, 100), "hello");
    }
}
