//! Built-in seed inputs for the fuzzing corpus.
//!
//! Three deterministic sources: the hostile fragments from
//! `crates/html/tests/pathological.rs` (mirrored here so the fuzzer starts
//! where the hand-written torture suite left off), a small well-formed
//! form page (the "normal" ancestor most mutants descend from), and that
//! page run through each of `cafc_corpus::mutate`'s eight torture
//! mutations under a fixed seed.

use cafc_corpus::mutate::{apply, page_rng, Mutation};

/// Hostile fragments mirrored from the pathological test table.
const PATHOLOGICAL: &[&str] = &[
    "<",
    "<!",
    "</",
    "</>",
    "< >",
    "<3 apples for <5 dollars",
    "<input",
    "<input name=\"q",
    "<a href=",
    "<![CDATA[ junk ]]>",
    "<!%$#@>",
    "<script>var a = '<div>'",
    "<title>half a title",
    "<p/><p////>",
    "text &#x1F4A",
    "\u{0}\u{1}<p>\u{7f}</p>",
];

/// A small well-formed form page exercising the constructs the CAFC
/// pipeline cares about: title, form, labels, select/options, entities.
const BASE_PAGE: &str = r#"<html><head><title>Used Car Search</title></head>
<body><h1>Find &amp; Compare Cars</h1>
<!-- navigation -->
<form action="/search" method="get">
  <label for="make">Make</label> <input type="text" name="make" id="make">
  <select name="state"><option>Utah</option><option selected>Ohio</option></select>
  <textarea name="notes">anything &lt;here&gt;</textarea>
  <input type="hidden" name="sid" value="42">
  <input type="submit" value="Go">
</form>
<p>Price range: $1&ndash;$9</p>
<script>if (a < b) { go("</form>"); }</script>
</body></html>
"#;

/// Fixed seed for the torture-mutated seed variants. Changing it changes
/// the built-in seed set, so it is part of the fuzzer's versioned surface.
pub const TORTURE_SEED: u64 = 0xCAFC;

/// All built-in seeds, in stable order: pathological fragments, the base
/// page, then one torture-mutated variant of the base page per mutation.
pub fn builtin_seeds() -> Vec<String> {
    let mut seeds: Vec<String> = PATHOLOGICAL.iter().map(|s| (*s).to_owned()).collect();
    seeds.push(BASE_PAGE.to_owned());
    for (i, &mutation) in Mutation::ALL.iter().enumerate() {
        let mut rng = page_rng(TORTURE_SEED, i);
        seeds.push(apply(BASE_PAGE, mutation, &mut rng));
    }
    seeds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_deterministic() {
        assert_eq!(builtin_seeds(), builtin_seeds());
    }

    #[test]
    fn seed_count_is_table_plus_base_plus_mutations() {
        assert_eq!(
            builtin_seeds().len(),
            PATHOLOGICAL.len() + 1 + Mutation::ALL.len()
        );
    }

    #[test]
    fn base_page_parses_with_a_form() {
        let doc = cafc_html::parse(BASE_PAGE);
        assert_eq!(cafc_html::extract_forms(&doc).len(), 1);
        assert!(doc.title().is_some());
    }
}
