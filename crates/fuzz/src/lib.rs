//! # cafc-fuzz
//!
//! Deterministic, dependency-free, coverage-guided fuzzing of the CAFC
//! HTML stack — the offline equivalent of a libFuzzer harness, built on
//! the pieces the workspace already has:
//!
//! * **coverage** comes from `cafc_html`'s instrumented tokenizer and
//!   tree builder ([`cafc_html::coverage`]): state-transition edges hashed
//!   into a fixed hit map, so "new behaviour" is a pure function of input;
//! * **randomness** comes from `cafc_check`'s splittable [`cafc_check::CheckRng`] —
//!   iteration `i` of a run seeds from `Seed::new(seed).stream(i)`, making
//!   every run with a fixed iteration budget bit-reproducible;
//! * **mutation** combines havoc operators, corpus splicing, a dictionary
//!   extracted from the parser's own grammar tables, and the eight torture
//!   mutations from `cafc_corpus::mutate`;
//! * **oracles** go beyond panic-freedom: differential parse equality,
//!   sanitize idempotence, tokenizer position invariants, chunked-parse
//!   equivalence (the contract for the future streaming tokenizer), and
//!   the ingestion accounting identity;
//! * **failures** are greedily minimized with `cafc_check`'s shrink trees
//!   and persisted as content-addressed regression witnesses.
//!
//! The `cafc fuzz` CLI subcommand drives [`engine::run`]; see DESIGN.md
//! §13 for the full workflow.

#![warn(missing_docs)]

pub mod config;
pub mod corpus_io;
pub mod dict;
pub mod engine;
pub mod oracles;
pub mod seeds;
pub mod shrink;

pub use config::FuzzConfig;
pub use corpus_io::{content_hash, entry_name, load_dir, write_entry, write_regression};
pub use dict::Dictionary;
pub use engine::{
    ab_compare, replay, run, truncate_to, CorpusEntry, FuzzFailure, FuzzReport, Fuzzer,
};
pub use oracles::{execute, Execution, OracleFailure, OracleKind};
pub use seeds::builtin_seeds;
pub use shrink::minimize;
