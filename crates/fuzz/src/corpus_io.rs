//! On-disk persistence for the fuzzing corpus and regression witnesses.
//!
//! Corpus entries are content-addressed: the filename is the FNV-1a hash
//! of the bytes (`{hash:016x}.html`), so re-running the fuzzer never
//! duplicates an input and `git status` shows exactly the novel ones.
//! Regressions pair the minimized witness with a `.recipe.txt` describing
//! the oracle, the root seed and the iteration that produced it — enough
//! to regenerate the failure from scratch with the same binary.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use cafc_html::coverage::fnv1a;

/// Content hash used for corpus filenames.
pub fn content_hash(input: &str) -> u64 {
    fnv1a(input.as_bytes())
}

/// The corpus filename for `input`.
pub fn entry_name(input: &str) -> String {
    format!("{:016x}.html", content_hash(input))
}

/// Load every `.html` entry in `dir`, sorted by filename (hash order), so
/// corpus loading is deterministic regardless of directory iteration
/// order. A missing directory is an error — callers decide whether that
/// means "create it" or "report it".
pub fn load_dir(dir: &Path) -> io::Result<Vec<(String, String)>> {
    let mut entries: Vec<(String, String)> = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some("html") {
            continue;
        }
        let name = entry.file_name().to_string_lossy().into_owned();
        let contents = fs::read_to_string(&path)?;
        entries.push((name, contents));
    }
    entries.sort();
    Ok(entries)
}

/// Write `input` to `dir` under its content-hash name (creating `dir` if
/// needed). Returns the path; writing an already-present entry is a no-op
/// that still returns the path.
pub fn write_entry(dir: &Path, input: &str) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(entry_name(input));
    if !path.exists() {
        fs::write(&path, input)?;
    }
    Ok(path)
}

/// Write a minimized regression witness plus its replay recipe. The
/// witness file *is* the regression (replay just re-executes it); the
/// recipe records provenance for humans.
pub fn write_regression(
    dir: &Path,
    minimized: &str,
    oracle_label: &str,
    detail: &str,
    seed: u64,
    iteration: u64,
) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let hash = content_hash(minimized);
    let witness = dir.join(format!("{hash:016x}.html"));
    fs::write(&witness, minimized)?;
    let recipe = dir.join(format!("{hash:016x}.recipe.txt"));
    let body = format!(
        "oracle: {oracle_label}\ndetail: {detail}\nfound-by: cafc fuzz --seed {seed} --budget-iters {n}\nreplay: cafc fuzz --replay <this directory>\n",
        n = iteration + 1,
    );
    fs::write(&recipe, body)?;
    Ok(witness)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cafc-fuzz-io-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn entry_names_are_content_addressed() {
        assert_eq!(entry_name("x"), entry_name("x"));
        assert_ne!(entry_name("x"), entry_name("y"));
        assert!(entry_name("x").ends_with(".html"));
    }

    #[test]
    fn write_then_load_round_trips_sorted() {
        let dir = tmpdir("roundtrip");
        write_entry(&dir, "<p>b</p>").expect("write b");
        write_entry(&dir, "<p>a</p>").expect("write a");
        // Duplicate write is a no-op.
        write_entry(&dir, "<p>a</p>").expect("rewrite a");
        let entries = load_dir(&dir).expect("load");
        assert_eq!(entries.len(), 2);
        let mut names: Vec<&str> = entries.iter().map(|(n, _)| n.as_str()).collect();
        let sorted = {
            let mut s = names.clone();
            s.sort();
            s
        };
        assert_eq!(names, sorted);
        names.dedup();
        assert_eq!(names.len(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_directory_is_an_error() {
        assert!(load_dir(Path::new("/nonexistent/cafc-fuzz")).is_err());
    }

    #[test]
    fn regression_writes_witness_and_recipe() {
        let dir = tmpdir("regression");
        let path = write_regression(&dir, "<!", "panic-freedom", "boom", 42, 7).expect("write");
        assert!(path.exists());
        let recipe = fs::read_to_string(path.with_extension("").with_extension("recipe.txt"))
            .or_else(|_| {
                fs::read_to_string(dir.join(format!("{:016x}.recipe.txt", content_hash("<!"))))
            })
            .expect("recipe");
        assert!(recipe.contains("panic-freedom"));
        assert!(recipe.contains("--seed 42"));
        assert!(recipe.contains("--budget-iters 8"));
        let _ = fs::remove_dir_all(&dir);
    }
}
