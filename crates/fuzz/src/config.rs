//! Fuzzing-run configuration.

/// Configuration for one deterministic fuzzing run.
///
/// Construct with [`FuzzConfig::new`] (or `default()`) and refine with the
/// `with_*` setters; the struct is `#[non_exhaustive]` so fields can be
/// added without breaking callers (the same builder convention as
/// `CheckConfig` and `IngestLimits` — enforced by `tools/config-lint.sh`).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct FuzzConfig {
    /// Root seed. Every random decision of the run derives from it, so the
    /// same seed and iteration budget reproduce the run bit-for-bit.
    pub seed: u64,
    /// Number of mutate-execute iterations.
    pub budget_iters: u64,
    /// Optional wall-clock budget in milliseconds. This is the one
    /// non-deterministic stop condition: a run cut short by time may cover
    /// less, but every iteration it *did* run is still the same pure
    /// function of (seed, iteration). Bit-determinism is only claimed for
    /// runs bounded by `budget_iters` alone.
    pub budget_ms: Option<u64>,
    /// Mutated inputs are truncated (at a char boundary) to this many
    /// bytes, keeping torture mutations like `MegaAttribute` from growing
    /// the corpus without bound.
    pub max_input_len: usize,
    /// Maximum havoc operations applied per mutation.
    pub max_havoc: u32,
    /// When false, run the unguided ablation: parents are drawn uniformly
    /// from the seed set and coverage novelty never feeds back into
    /// scheduling. Used by the A/B harness.
    pub guided: bool,
    /// Step budget for shrinking a failing input.
    pub max_shrink_steps: usize,
}

/// Default root seed, shared with `CheckConfig`'s convention.
const DEFAULT_SEED: u64 = 0xCAFC;

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: DEFAULT_SEED,
            budget_iters: 500,
            budget_ms: None,
            max_input_len: 64 * 1024,
            max_havoc: 4,
            guided: true,
            max_shrink_steps: 4096,
        }
    }
}

impl FuzzConfig {
    /// The default configuration.
    pub fn new() -> FuzzConfig {
        FuzzConfig::default()
    }

    /// Set the root seed.
    pub fn with_seed(mut self, seed: u64) -> FuzzConfig {
        self.seed = seed;
        self
    }

    /// Set the iteration budget.
    pub fn with_budget_iters(mut self, iters: u64) -> FuzzConfig {
        self.budget_iters = iters;
        self
    }

    /// Set (or clear) the wall-clock budget.
    pub fn with_budget_ms(mut self, ms: Option<u64>) -> FuzzConfig {
        self.budget_ms = ms;
        self
    }

    /// Set the mutated-input size cap.
    pub fn with_max_input_len(mut self, bytes: usize) -> FuzzConfig {
        self.max_input_len = bytes;
        self
    }

    /// Set the per-mutation havoc-op cap.
    pub fn with_max_havoc(mut self, ops: u32) -> FuzzConfig {
        self.max_havoc = ops.max(1);
        self
    }

    /// Enable or disable coverage guidance.
    pub fn with_guided(mut self, guided: bool) -> FuzzConfig {
        self.guided = guided;
        self
    }

    /// Set the shrink step budget.
    pub fn with_max_shrink_steps(mut self, steps: usize) -> FuzzConfig {
        self.max_shrink_steps = steps;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let cfg = FuzzConfig::new()
            .with_seed(7)
            .with_budget_iters(10)
            .with_budget_ms(Some(1000))
            .with_max_input_len(1024)
            .with_max_havoc(2)
            .with_guided(false)
            .with_max_shrink_steps(100);
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.budget_iters, 10);
        assert_eq!(cfg.budget_ms, Some(1000));
        assert_eq!(cfg.max_input_len, 1024);
        assert_eq!(cfg.max_havoc, 2);
        assert!(!cfg.guided);
        assert_eq!(cfg.max_shrink_steps, 100);
    }

    #[test]
    fn havoc_floor_is_one() {
        assert_eq!(FuzzConfig::new().with_max_havoc(0).max_havoc, 1);
    }
}
