//! The mutation dictionary: syntactic atoms the havoc mutator splices in.
//!
//! The bulk of the dictionary is extracted from the parser's own state
//! machine via [`cafc_html::syntax_dictionary`] — tag vocabulary, markup
//! delimiters, attribute quoting forms, entity forms — so a random insert
//! has a real chance of flipping the tokenizer into a different state
//! instead of just perturbing character data. A few hostile extras
//! (control characters, broken surrogate-ish escapes, nesting fragments)
//! round it out.

use cafc_check::CheckRng;

/// Extra atoms not derivable from the grammar tables: hostile characters
/// and fragments that historically break HTML parsers.
const EXTRA_ATOMS: &[&str] = &[
    "\u{0}",
    "\u{1}",
    "\u{7f}",
    "\u{85}",
    "\u{feff}",
    "é",
    "漢",
    "💣",
    "<![CDATA[",
    "]]>",
    "<!doctype",
    "<script>",
    "</script >",
    "<p////>",
    "=\"\"",
    "a=b",
    "&#x1F4A",
    "--!>",
];

/// A stable, deduplicated list of mutation atoms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dictionary {
    atoms: Vec<String>,
}

impl Default for Dictionary {
    fn default() -> Self {
        Dictionary::new()
    }
}

impl Dictionary {
    /// Build the dictionary from the parser grammar plus hostile extras.
    /// Deterministic: the output depends only on the grammar tables.
    pub fn new() -> Dictionary {
        let mut atoms = cafc_html::syntax_dictionary();
        atoms.extend(EXTRA_ATOMS.iter().map(|s| (*s).to_owned()));
        atoms.sort();
        atoms.dedup();
        Dictionary { atoms }
    }

    /// The atoms, sorted and deduplicated.
    pub fn atoms(&self) -> &[String] {
        &self.atoms
    }

    /// Pick one atom deterministically from `rng`. The dictionary is never
    /// empty (the grammar tables alone contribute dozens of atoms), but
    /// degrade to `""` rather than panic if it ever were.
    pub fn pick<'a>(&'a self, rng: &mut CheckRng) -> &'a str {
        rng.pick(&self.atoms).map(String::as_str).unwrap_or("")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dictionary_is_stable() {
        assert_eq!(Dictionary::new(), Dictionary::new());
    }

    #[test]
    fn dictionary_is_sorted_and_deduped() {
        let dict = Dictionary::new();
        let mut sorted = dict.atoms().to_vec();
        sorted.sort();
        sorted.dedup();
        assert_eq!(dict.atoms(), sorted.as_slice());
    }

    #[test]
    fn dictionary_covers_the_grammar() {
        let dict = Dictionary::new();
        let has = |s: &str| dict.atoms().iter().any(|a| a == s);
        assert!(has("<!--"), "comment open");
        assert!(has("</script>"), "raw-text close");
        assert!(has("&amp;"), "named entity");
        assert!(has("&#x"), "hex entity prefix");
        assert!(has("<input>"), "void element");
    }

    #[test]
    fn pick_is_deterministic() {
        let dict = Dictionary::new();
        let a: Vec<&str> = {
            let mut rng = CheckRng::new(42);
            (0..16).map(|_| dict.pick(&mut rng)).collect()
        };
        let b: Vec<&str> = {
            let mut rng = CheckRng::new(42);
            (0..16).map(|_| dict.pick(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
