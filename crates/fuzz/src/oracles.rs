//! The oracle catalog: what "correct" means for one fuzzed input.
//!
//! Every execution runs the full battery — panic freedom plus the
//! differential and invariant oracles — because each one is cheap relative
//! to the parse itself. A failure carries the oracle that tripped and a
//! human-readable detail; the engine shrinks the input against the same
//! oracle before persisting it.

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Once;

use cafc::{FormPageCorpus, IngestLimits, ModelOptions};
use cafc_check::Seed;
use cafc_html::coverage::{Coverage, CoverageMap};
use cafc_html::{parse, parse_chunked, strip_control_chars, Document, Tokenizer};

/// Which oracle rejected the input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleKind {
    /// The parser panicked.
    PanicFreedom,
    /// `parse` and `parse_with_coverage` disagreed on the document.
    StatsEquivalence,
    /// `strip_control_chars` was not idempotent.
    SanitizeIdempotence,
    /// The tokenizer's position left the input byte range or went
    /// backwards.
    TokenSpans,
    /// `parse(whole)` and `parse(chunks)` disagreed.
    ChunkEquivalence,
    /// The ingestion report failed its accounting identity.
    IngestAccounting,
}

impl OracleKind {
    /// Stable lowercase label for reports and recipe files.
    pub fn label(self) -> &'static str {
        match self {
            OracleKind::PanicFreedom => "panic-freedom",
            OracleKind::StatsEquivalence => "stats-equivalence",
            OracleKind::SanitizeIdempotence => "sanitize-idempotence",
            OracleKind::TokenSpans => "token-spans",
            OracleKind::ChunkEquivalence => "chunk-equivalence",
            OracleKind::IngestAccounting => "ingest-accounting",
        }
    }
}

/// One oracle violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OracleFailure {
    /// The oracle that tripped.
    pub oracle: OracleKind,
    /// What it observed.
    pub detail: String,
}

/// The result of executing one input through the instrumented parse and
/// the oracle battery.
#[derive(Debug, Clone)]
pub struct Execution {
    /// Coverage recorded by the instrumented parse (present even when the
    /// parse panicked — whatever was recorded up to the panic stands).
    pub coverage: CoverageMap,
    /// Every oracle violation, in catalog order.
    pub failures: Vec<OracleFailure>,
}

impl Execution {
    /// Whether any oracle rejected the input.
    pub fn failed(&self) -> bool {
        !self.failures.is_empty()
    }
}

thread_local! {
    /// True while this thread is intentionally feeding hostile input to
    /// `catch_unwind`; the quiet panic hook suppresses output for it.
    static CAPTURING: Cell<bool> = const { Cell::new(false) };
}

static HOOK: Once = Once::new();

/// Install (once per process) a panic hook that stays silent for panics
/// the fuzzer catches on purpose and delegates to the previous hook for
/// everything else.
pub fn install_quiet_panic_hook() {
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !CAPTURING.with(Cell::get) {
                prev(info);
            }
        }));
    });
}

/// Render a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Run `f` with panics silenced and caught.
fn guarded<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    install_quiet_panic_hook();
    CAPTURING.with(|c| c.set(true));
    let result = catch_unwind(AssertUnwindSafe(f));
    CAPTURING.with(|c| c.set(false));
    result.map_err(|payload| panic_message(payload.as_ref()))
}

/// Floor `i` to a char boundary of `s`.
pub(crate) fn floor_boundary(s: &str, mut i: usize) -> usize {
    i = i.min(s.len());
    while i > 0 && !s.is_char_boundary(i) {
        i -= 1;
    }
    i
}

/// Deterministic split points for the chunk-feeding oracle: up to four
/// char-boundary offsets derived from (`split_seed`, input content).
fn split_points(input: &str, split_seed: u64) -> Vec<usize> {
    if input.len() < 2 {
        return Vec::new();
    }
    let mut rng = Seed::new(split_seed)
        .derive(cafc_html::coverage::fnv1a(input.as_bytes()))
        .rng();
    let mut points: Vec<usize> = (0..4)
        .map(|_| floor_boundary(input, rng.range_usize(1, input.len())))
        .filter(|&p| p > 0 && p < input.len())
        .collect();
    points.sort_unstable();
    points.dedup();
    points
}

/// Split `input` at `points` (ascending byte offsets on char boundaries).
fn chunks_at<'a>(input: &'a str, points: &[usize]) -> Vec<&'a str> {
    let mut chunks = Vec::with_capacity(points.len() + 1);
    let mut start = 0;
    for &p in points {
        chunks.push(&input[start..p]);
        start = p;
    }
    chunks.push(&input[start..]);
    chunks
}

/// Execute `input` through the instrumented parse and every oracle.
/// Deterministic: the result depends only on (`input`, `split_seed`).
pub fn execute(input: &str, split_seed: u64) -> Execution {
    let mut failures = Vec::new();
    let cov = Coverage::enabled();

    // Oracle 1: panic freedom (the instrumented parse itself).
    let parsed: Option<(Document, _)> = match guarded(|| Document::parse_with_coverage(input, &cov))
    {
        Ok(pair) => Some(pair),
        Err(msg) => {
            failures.push(OracleFailure {
                oracle: OracleKind::PanicFreedom,
                detail: format!("parse panicked: {msg}"),
            });
            None
        }
    };
    let coverage = cov.snapshot().unwrap_or_default();

    if let Some((instrumented_doc, _stats)) = &parsed {
        // Oracle 2: parse ≡ parse_with_stats ≡ parse_with_coverage.
        // `parse` delegates to `parse_with_stats` with a disabled handle,
        // so this equality pins both that delegation and that recording
        // coverage never perturbs the tree.
        match guarded(|| parse(input)) {
            Ok(plain_doc) => {
                if plain_doc != *instrumented_doc {
                    failures.push(OracleFailure {
                        oracle: OracleKind::StatsEquivalence,
                        detail: "parse and parse_with_coverage built different trees".to_owned(),
                    });
                }
            }
            Err(msg) => failures.push(OracleFailure {
                oracle: OracleKind::PanicFreedom,
                detail: format!("plain parse panicked: {msg}"),
            }),
        }

        // Oracle 5: chunked delivery is equivalent to whole delivery.
        let points = split_points(input, split_seed);
        if !points.is_empty() {
            match guarded(|| parse_chunked(&chunks_at(input, &points))) {
                Ok(chunked_doc) => {
                    // Compare against the *plain* parse path via the
                    // instrumented doc (equal by oracle 2 when healthy).
                    if chunked_doc != *instrumented_doc {
                        failures.push(OracleFailure {
                            oracle: OracleKind::ChunkEquivalence,
                            detail: format!(
                                "parse(chunks at {points:?}) differs from parse(whole)"
                            ),
                        });
                    }
                }
                Err(msg) => failures.push(OracleFailure {
                    oracle: OracleKind::PanicFreedom,
                    detail: format!("chunked parse panicked: {msg}"),
                }),
            }
        }
    }

    // Oracle 3: sanitize idempotence.
    match guarded(|| {
        let once = strip_control_chars(input).0.into_owned();
        let (twice, changed_again) = strip_control_chars(&once);
        let twice = twice.into_owned();
        (once, twice, changed_again)
    }) {
        Ok((once, twice, changed_again)) => {
            if changed_again || once != twice {
                failures.push(OracleFailure {
                    oracle: OracleKind::SanitizeIdempotence,
                    detail: "strip_control_chars(strip_control_chars(x)) != strip_control_chars(x)"
                        .to_owned(),
                });
            }
        }
        Err(msg) => failures.push(OracleFailure {
            oracle: OracleKind::PanicFreedom,
            detail: format!("sanitize panicked: {msg}"),
        }),
    }

    // Oracle 4: tokenizer position stays within [0, len] and never goes
    // backwards across yielded tokens.
    match guarded(|| {
        let mut tok = Tokenizer::new(input);
        let mut prev = tok.pos();
        while tok.next().is_some() {
            let pos = tok.pos();
            if pos < prev || pos > input.len() {
                return Some((prev, pos));
            }
            prev = pos;
        }
        None
    }) {
        Ok(Some((prev, pos))) => failures.push(OracleFailure {
            oracle: OracleKind::TokenSpans,
            detail: format!(
                "tokenizer pos went {prev} -> {pos} (input len {})",
                input.len()
            ),
        }),
        Ok(None) => {}
        Err(msg) => failures.push(OracleFailure {
            oracle: OracleKind::PanicFreedom,
            detail: format!("tokenizer panicked: {msg}"),
        }),
    }

    // Oracle 6: the hardened ingestion layer accounts for every page.
    match guarded(|| {
        let (corpus, report) = FormPageCorpus::from_html_ingest(
            std::iter::once(input),
            &ModelOptions::default(),
            &IngestLimits::default(),
        );
        (corpus.len(), report)
    }) {
        Ok((kept_pages, report)) => {
            if !report.is_accounted() {
                failures.push(OracleFailure {
                    oracle: OracleKind::IngestAccounting,
                    detail: "IngestReport::is_accounted() is false".to_owned(),
                });
            } else if report.kept.len() != kept_pages || report.total() != 1 {
                failures.push(OracleFailure {
                    oracle: OracleKind::IngestAccounting,
                    detail: format!(
                        "kept {} / corpus {} / total {} for a single input page",
                        report.kept.len(),
                        kept_pages,
                        report.total()
                    ),
                });
            }
        }
        Err(msg) => failures.push(OracleFailure {
            oracle: OracleKind::PanicFreedom,
            detail: format!("ingest panicked: {msg}"),
        }),
    }

    Execution { coverage, failures }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_input_passes_all_oracles() {
        let exec = execute(
            "<html><body><form action=\"/s\"><input name=q></form></body></html>",
            1,
        );
        assert!(!exec.failed(), "failures: {:?}", exec.failures);
        assert!(exec.coverage.edge_count() > 0);
    }

    #[test]
    fn pathological_inputs_pass_all_oracles() {
        for seed in crate::seeds::builtin_seeds() {
            let exec = execute(&seed, 7);
            assert!(!exec.failed(), "input {seed:?} failed: {:?}", exec.failures);
        }
    }

    #[test]
    fn execution_is_deterministic() {
        let a = execute("<div><p>x</p></div>", 99);
        let b = execute("<div><p>x</p></div>", 99);
        assert_eq!(a.coverage.bitmap_hash(), b.coverage.bitmap_hash());
        assert_eq!(a.failures, b.failures);
    }

    #[test]
    fn split_points_are_char_boundary_safe() {
        let input = "aé漢💣<p>x</p>";
        for seed in 0..32 {
            let points = split_points(input, seed);
            for &p in &points {
                assert!(input.is_char_boundary(p));
            }
            let chunks = chunks_at(input, &points);
            assert_eq!(chunks.concat(), input);
        }
    }

    #[test]
    fn panics_are_caught_and_reported() {
        let err = guarded(|| -> () { std::panic::panic_any("boom") });
        assert_eq!(err.err().as_deref(), Some("boom"));
    }
}
