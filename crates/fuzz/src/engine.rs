//! The coverage-guided fuzzing loop.
//!
//! A classic corpus-scheduler design scaled down to a deterministic,
//! dependency-free setting: a corpus of interesting inputs, an
//! energy-weighted parent selector, havoc/splice/dictionary mutators, and
//! a global "virgin" coverage map that decides which mutants earn a
//! corpus slot. Every random decision of iteration `i` flows from
//! `Seed::new(cfg.seed).stream(i)`, so a run with a fixed iteration
//! budget is a pure function of (seed, seeds, budget) — the property the
//! determinism tests and the replayable recipes rely on.

use std::collections::BTreeSet;
use std::time::Instant;

use cafc_check::{CheckRng, Seed};
use cafc_corpus::mutate::{apply, Mutation};
use cafc_html::coverage::{fnv1a, CoverageMap, MAP_SIZE};

use crate::config::FuzzConfig;
use crate::corpus_io::content_hash;
use crate::dict::Dictionary;
use crate::oracles::{execute, floor_boundary, OracleKind};
use crate::seeds::builtin_seeds;
use crate::shrink::minimize;

/// One scheduled corpus input.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    /// The input bytes.
    pub input: String,
    /// Content hash (the on-disk name).
    pub hash: u64,
    /// Scheduling weight; higher = picked more often.
    pub energy: u64,
    /// Whether this entry was a seed (vs. found during the run).
    pub is_seed: bool,
}

/// A minimized oracle violation found during a run.
#[derive(Debug, Clone)]
pub struct FuzzFailure {
    /// The oracle that rejected the input.
    pub oracle: OracleKind,
    /// What the oracle observed (on the original input).
    pub detail: String,
    /// The input as found.
    pub input: String,
    /// The greedily minimized witness.
    pub minimized: String,
    /// The iteration that produced it; `None` for a failing seed.
    pub iteration: Option<u64>,
}

/// The deterministic summary of one run.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// Root seed of the run.
    pub seed: u64,
    /// Mutate-execute iterations performed.
    pub iterations: u64,
    /// Oracle executions (seeds + non-duplicate mutants).
    pub executions: u64,
    /// Final corpus size (seeds + coverage-novel additions).
    pub corpus_size: usize,
    /// Coverage-novel inputs added during the loop, in discovery order.
    pub added: Vec<String>,
    /// Distinct coverage edges reached across the whole run.
    pub unique_edges: usize,
    /// Stable hash of the global coverage class map.
    pub coverage_hash: u64,
    /// Minimized failures, deduplicated by witness.
    pub failures: Vec<FuzzFailure>,
}

/// Hostile single characters the havoc mutator sprinkles in.
const HOSTILE_CHARS: &[char] = &[
    '<', '>', '&', '"', '\'', '=', '/', '!', '-', ' ', '\u{0}', '\u{7f}',
];

/// The fuzzer state: corpus, global coverage, dedup set, counters.
pub struct Fuzzer {
    cfg: FuzzConfig,
    dict: Dictionary,
    entries: Vec<CorpusEntry>,
    /// Per-bin maximum hit-count class observed across all executions.
    virgin: Vec<u8>,
    seen: BTreeSet<u64>,
    executions: u64,
    added: Vec<String>,
    failures: Vec<FuzzFailure>,
    failure_witnesses: BTreeSet<u64>,
}

impl Fuzzer {
    /// A fuzzer with an empty corpus.
    pub fn new(cfg: FuzzConfig) -> Fuzzer {
        Fuzzer {
            cfg,
            dict: Dictionary::new(),
            entries: Vec::new(),
            virgin: vec![0; MAP_SIZE],
            seen: BTreeSet::new(),
            executions: 0,
            added: Vec::new(),
            failures: Vec::new(),
            failure_witnesses: BTreeSet::new(),
        }
    }

    /// Merge an execution's coverage into the global map; returns how many
    /// bins rose to a new hit-count class (0 = nothing novel).
    fn merge_coverage(&mut self, map: &CoverageMap) -> usize {
        let mut novel = 0usize;
        for (bin, &count) in map.bins().iter().enumerate() {
            let class = CoverageMap::class_of(count);
            if class > self.virgin[bin] {
                self.virgin[bin] = class;
                novel += 1;
            }
        }
        novel
    }

    /// Execute one input: run oracles, merge coverage, record failures
    /// (shrunk against the tripping oracle), and return the novelty count.
    fn ingest_input(&mut self, input: &str, iteration: Option<u64>) -> usize {
        let exec = execute(input, self.cfg.seed);
        self.executions += 1;
        let novel = self.merge_coverage(&exec.coverage);
        let split_seed = self.cfg.seed;
        let max_steps = self.cfg.max_shrink_steps;
        let mut kinds_done: Vec<OracleKind> = Vec::new();
        for failure in &exec.failures {
            if kinds_done.contains(&failure.oracle) {
                continue;
            }
            kinds_done.push(failure.oracle);
            let kind = failure.oracle;
            let minimized = minimize(
                input,
                |candidate| {
                    execute(candidate, split_seed)
                        .failures
                        .iter()
                        .any(|f| f.oracle == kind)
                },
                max_steps,
            );
            if self.failure_witnesses.insert(content_hash(&minimized)) {
                self.failures.push(FuzzFailure {
                    oracle: kind,
                    detail: failure.detail.clone(),
                    input: input.to_owned(),
                    minimized,
                    iteration,
                });
            }
        }
        novel
    }

    /// Add `input` to the corpus with energy derived from its novelty.
    fn add_entry(&mut self, input: String, novel: usize, is_seed: bool) {
        let hash = content_hash(&input);
        self.entries.push(CorpusEntry {
            input,
            hash,
            // Favor coverage-novel inputs: each newly-reached class adds
            // weight, capped so no single entry dominates the schedule.
            energy: 1 + (2 * novel as u64).min(31),
            is_seed,
        });
    }

    /// Feed the seed set (built-ins plus `extra`) through the oracles and
    /// into the corpus. Duplicate and empty seeds are skipped.
    pub fn load_seeds(&mut self, extra: Vec<String>) {
        let mut all = builtin_seeds();
        all.extend(extra);
        for seed in all {
            let seed = truncate_to(&seed, self.cfg.max_input_len);
            if seed.is_empty() || !self.seen.insert(content_hash(&seed)) {
                continue;
            }
            let novel = self.ingest_input(&seed, None);
            self.add_entry(seed, novel, true);
        }
    }

    /// Pick a parent index: energy-weighted when guided, uniform over the
    /// seed entries when not (the unguided ablation never grows its
    /// corpus, so "all entries" and "seed entries" coincide there).
    fn select_parent(&self, rng: &mut CheckRng) -> Option<usize> {
        if self.entries.is_empty() {
            return None;
        }
        if !self.cfg.guided {
            return Some(rng.range_usize(0, self.entries.len() - 1));
        }
        let total: u64 = self.entries.iter().map(|e| e.energy).sum();
        let mut ticket = rng.below(total.max(1));
        for (i, entry) in self.entries.iter().enumerate() {
            if ticket < entry.energy {
                return Some(i);
            }
            ticket -= entry.energy;
        }
        Some(self.entries.len() - 1)
    }

    /// Apply 1..=max_havoc mutation operations to the parent.
    fn mutate(&self, parent: usize, rng: &mut CheckRng) -> String {
        let mut s = self.entries[parent].input.clone();
        let ops = 1 + rng.below(u64::from(self.cfg.max_havoc));
        for _ in 0..ops {
            s = self.mutate_once(s, rng);
        }
        truncate_to(&s, self.cfg.max_input_len)
    }

    fn mutate_once(&self, s: String, rng: &mut CheckRng) -> String {
        match rng.below(7) {
            // Insert a dictionary atom at a char boundary.
            0 => {
                let at = floor_boundary(&s, rng.range_usize(0, s.len()));
                let atom = self.dict.pick(rng);
                let mut out = String::with_capacity(s.len() + atom.len());
                out.push_str(&s[..at]);
                out.push_str(atom);
                out.push_str(&s[at..]);
                out
            }
            // Delete a random range.
            1 => {
                if s.is_empty() {
                    return s;
                }
                let a = floor_boundary(&s, rng.range_usize(0, s.len()));
                let b = floor_boundary(&s, rng.range_usize(0, s.len()));
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                let mut out = String::with_capacity(s.len());
                out.push_str(&s[..lo]);
                out.push_str(&s[hi..]);
                out
            }
            // Duplicate a random range in place.
            2 => {
                if s.is_empty() {
                    return s;
                }
                let a = floor_boundary(&s, rng.range_usize(0, s.len()));
                let b = floor_boundary(&s, rng.range_usize(0, s.len()));
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                let mut out = String::with_capacity(s.len() + (hi - lo));
                out.push_str(&s[..hi]);
                out.push_str(&s[lo..hi]);
                out.push_str(&s[hi..]);
                out
            }
            // Splice: our prefix + another entry's suffix.
            3 => {
                let other = &self.entries[rng.range_usize(0, self.entries.len() - 1)].input;
                let cut_self = floor_boundary(&s, rng.range_usize(0, s.len()));
                let cut_other = floor_boundary(other, rng.range_usize(0, other.len()));
                let mut out = String::with_capacity(cut_self + other.len() - cut_other);
                out.push_str(&s[..cut_self]);
                out.push_str(&other[cut_other..]);
                out
            }
            // One of the eight torture mutations.
            4 => {
                let menu = Mutation::ALL;
                let mutation = menu[rng.range_usize(0, menu.len() - 1)];
                apply(&s, mutation, rng)
            }
            // Overwrite one char with a hostile char.
            5 => {
                if s.is_empty() {
                    return s;
                }
                let at = floor_boundary(&s, rng.range_usize(0, s.len().saturating_sub(1)));
                let ch = HOSTILE_CHARS[rng.range_usize(0, HOSTILE_CHARS.len() - 1)];
                let mut out = String::with_capacity(s.len());
                out.push_str(&s[..at]);
                out.push(ch);
                let next = s[at..]
                    .chars()
                    .next()
                    .map(char::len_utf8)
                    .unwrap_or_default();
                out.push_str(&s[at + next..]);
                out
            }
            // Insert a hostile char.
            _ => {
                let at = floor_boundary(&s, rng.range_usize(0, s.len()));
                let ch = HOSTILE_CHARS[rng.range_usize(0, HOSTILE_CHARS.len() - 1)];
                let mut out = String::with_capacity(s.len() + ch.len_utf8());
                out.push_str(&s[..at]);
                out.push(ch);
                out.push_str(&s[at..]);
                out
            }
        }
    }

    /// Run the mutate-execute loop and produce the final report.
    pub fn run(mut self) -> FuzzReport {
        let deadline = self
            .cfg
            .budget_ms
            .map(|ms| Instant::now() + std::time::Duration::from_millis(ms));
        let mut iterations = 0u64;
        for i in 0..self.cfg.budget_iters {
            if let Some(deadline) = deadline {
                if Instant::now() >= deadline {
                    break;
                }
            }
            iterations = i + 1;
            let mut rng = Seed::new(self.cfg.seed).stream(i);
            let Some(parent) = self.select_parent(&mut rng) else {
                break;
            };
            let mutant = self.mutate(parent, &mut rng);
            if mutant.is_empty() || !self.seen.insert(content_hash(&mutant)) {
                continue;
            }
            let novel = self.ingest_input(&mutant, Some(i));
            if novel > 0 && self.cfg.guided {
                self.added.push(mutant.clone());
                self.add_entry(mutant, novel, false);
            }
        }
        FuzzReport {
            seed: self.cfg.seed,
            iterations,
            executions: self.executions,
            corpus_size: self.entries.len(),
            added: self.added,
            unique_edges: self.virgin.iter().filter(|&&c| c > 0).count(),
            coverage_hash: fnv1a(&self.virgin),
            failures: self.failures,
        }
    }

    /// The current corpus (seeds plus additions).
    pub fn entries(&self) -> &[CorpusEntry] {
        &self.entries
    }
}

/// Truncate `s` to at most `max_len` bytes on a char boundary — the same
/// cap the engine applies to every seed and mutant, exposed so callers
/// persisting seed files (`cafc fuzz --write-seeds`) store exactly what
/// the engine would execute.
pub fn truncate_to(s: &str, max_len: usize) -> String {
    s[..floor_boundary(s, max_len)].to_owned()
}

/// Run one full fuzzing session: built-in seeds plus `extra_seeds`, then
/// the scheduled loop.
pub fn run(cfg: &FuzzConfig, extra_seeds: Vec<String>) -> FuzzReport {
    let mut fuzzer = Fuzzer::new(cfg.clone());
    fuzzer.load_seeds(extra_seeds);
    fuzzer.run()
}

/// The A/B harness: the same seed and iteration budget with coverage
/// guidance on and off. Returns `(guided, unguided)` reports; the guided
/// run reaching strictly more unique edges is the acceptance criterion
/// recorded in EXPERIMENTS.md.
pub fn ab_compare(cfg: &FuzzConfig, extra_seeds: Vec<String>) -> (FuzzReport, FuzzReport) {
    let guided = run(&cfg.clone().with_guided(true), extra_seeds.clone());
    let unguided = run(&cfg.clone().with_guided(false), extra_seeds);
    (guided, unguided)
}

/// Re-execute stored inputs (corpus or regressions) against the oracle
/// battery. Returns the entries that fail, with their failures.
pub fn replay(
    entries: &[(String, String)],
    split_seed: u64,
) -> Vec<(String, Vec<crate::oracles::OracleFailure>)> {
    entries
        .iter()
        .filter_map(|(name, input)| {
            let exec = execute(input, split_seed);
            if exec.failed() {
                Some((name.clone(), exec.failures))
            } else {
                None
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> FuzzConfig {
        FuzzConfig::new()
            .with_seed(0xF00D)
            .with_budget_iters(60)
            .with_max_input_len(4096)
    }

    #[test]
    fn run_is_deterministic() {
        let a = run(&small_cfg(), vec![]);
        let b = run(&small_cfg(), vec![]);
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(a.executions, b.executions);
        assert_eq!(a.corpus_size, b.corpus_size);
        assert_eq!(a.added, b.added);
        assert_eq!(a.unique_edges, b.unique_edges);
        assert_eq!(a.coverage_hash, b.coverage_hash);
    }

    #[test]
    fn seeds_alone_reach_coverage() {
        let report = run(&small_cfg().with_budget_iters(0), vec![]);
        assert!(report.unique_edges > 20, "edges: {}", report.unique_edges);
        assert!(report.corpus_size > 20);
        assert_eq!(report.iterations, 0);
    }

    #[test]
    fn extra_seeds_join_the_corpus() {
        let base = run(&small_cfg().with_budget_iters(0), vec![]);
        let extra = run(
            &small_cfg().with_budget_iters(0),
            vec!["<custom-tag attr=1>unique seed</custom-tag>".to_owned()],
        );
        assert_eq!(extra.corpus_size, base.corpus_size + 1);
    }

    #[test]
    fn clean_run_reports_no_failures() {
        let report = run(&small_cfg(), vec![]);
        assert!(
            report.failures.is_empty(),
            "unexpected failures: {:?}",
            report
                .failures
                .iter()
                .map(|f| (f.oracle, &f.minimized))
                .collect::<Vec<_>>()
        );
    }
}
