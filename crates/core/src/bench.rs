//! The batch-pipeline benchmark: one seeded corpus → k-means run, timed
//! per stage, with a machine-readable report.
//!
//! `cafc bench --json` drives [`run_bench`] and writes the result as
//! `BENCH_<n>.json` — the recorded trajectory the CI smoke job and the
//! schema regression tests pin. The report splits into two renders:
//!
//! * [`BenchReport::render_json`] — everything, including wall-clock,
//!   throughput and peak RSS. Machine-dependent; committed for the record
//!   but never diffed.
//! * [`BenchReport::render_digest`] — only fields that are a pure function
//!   of the configuration: page counts, dictionary size, accounting
//!   totals, and FNV-1a hashes of the clustering results. Two runs with
//!   the same config must produce byte-identical digests regardless of
//!   thread count or machine — CI diffs exactly this.
//!
//! The pipeline under test is the scale path of DESIGN.md §17: sharded
//! ingest ([`crate::model::ingest_shard`] under a memory budget), TF-IDF
//! vectorization, sparse k-means ([`cafc_cluster::kmeans_sparse_exec`])
//! and HAC over a deterministic sample. Corpus *generation* is injected
//! as a shard source closure — this crate cannot depend on
//! `cafc-corpus` (which depends on nothing here but is wired by the CLI),
//! and tests substitute tiny hand-rolled corpora.

use crate::ingest::{IngestLimits, IngestReport};
use crate::model::{ingest_shard, FormPageCorpus, IngestMerge, ModelOptions};
use crate::space::{FeatureConfig, FormPageSpace};
use cafc_cluster::{
    hac_exec, kmeans_sparse_exec, random_singleton_seeds, ClusterSpace, HacOptions, KMeansOptions,
    Linkage, Partition,
};
use cafc_exec::ExecPolicy;
use cafc_obs::Obs;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Benchmark configuration.
///
/// Mirrors the CLI flags of `cafc bench --json`; the shard source decides
/// what the pages actually are, so `pages` here is advisory metadata
/// echoed into the report plus the denominator for throughput numbers —
/// [`run_bench`] recomputes it from the shards it actually consumed.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct BenchConfig {
    /// Expected total pages (echoed; recomputed from the shard source).
    pub pages: usize,
    /// Pages per ingest work unit (output-invariant; see `IngestLimits`).
    pub shard_pages: usize,
    /// Seed for corpus generation and k-means seeding.
    pub seed: u64,
    /// Number of k-means clusters.
    pub k: usize,
    /// HAC sample size (HAC is O(n²); it runs on a deterministic sample).
    pub hac_sample: usize,
    /// Worker threads; `<= 1` means the serial policy.
    pub threads: usize,
    /// Corpus memory budget in bytes (`usize::MAX` = unbounded).
    pub max_corpus_bytes: usize,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            pages: 1_000,
            shard_pages: 1_024,
            seed: 0,
            k: 8,
            hac_sample: 200,
            threads: 1,
            max_corpus_bytes: usize::MAX,
        }
    }
}

impl BenchConfig {
    /// The default configuration (10^3 pages, k = 8, serial).
    pub fn new() -> Self {
        BenchConfig::default()
    }

    /// Set the expected page count.
    pub fn with_pages(mut self, pages: usize) -> Self {
        self.pages = pages;
        self
    }

    /// Set the ingest shard size.
    pub fn with_shard_pages(mut self, pages: usize) -> Self {
        self.shard_pages = pages;
        self
    }

    /// Set the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the cluster count.
    pub fn with_k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Set the HAC sample size.
    pub fn with_hac_sample(mut self, sample: usize) -> Self {
        self.hac_sample = sample;
        self
    }

    /// Set the worker-thread count (`<= 1` = serial).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Set the corpus memory budget.
    pub fn with_max_corpus_bytes(mut self, bytes: usize) -> Self {
        self.max_corpus_bytes = bytes;
        self
    }

    /// The execution policy the configuration selects.
    pub fn policy(&self) -> ExecPolicy {
        if self.threads <= 1 {
            ExecPolicy::Serial
        } else {
            ExecPolicy::Parallel {
                threads: self.threads,
            }
        }
    }
}

/// One timed pipeline stage.
#[derive(Debug, Clone)]
pub struct BenchStage {
    /// Stage name (`gen`, `ingest`, `vectorize`, `kmeans`, `hac_sample`).
    pub name: &'static str,
    /// Wall-clock milliseconds.
    pub wall_ms: f64,
    /// Items the stage processed (pages, or sample size for HAC).
    pub items: usize,
    /// Throughput: `items` per wall-clock second.
    pub pages_per_sec: f64,
}

/// The benchmark result. Field groups: configuration echo, per-stage
/// timings (machine-dependent), accounting and result hashes (pure
/// functions of the configuration).
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Pages actually consumed from the shard source.
    pub pages: usize,
    /// Configuration echo.
    pub shard_pages: usize,
    /// Configuration echo.
    pub seed: u64,
    /// Configuration echo.
    pub k: usize,
    /// Configuration echo.
    pub hac_sample: usize,
    /// Effective worker threads (resolved from the policy).
    pub threads: usize,
    /// Timed stages in execution order.
    pub stages: Vec<BenchStage>,
    /// Pages ingested cleanly.
    pub pages_ok: usize,
    /// Pages kept with degradations.
    pub pages_degraded: usize,
    /// Pages dropped (parse failure, limits, or memory budget).
    pub pages_quarantined: usize,
    /// Distinct terms in the shared dictionary.
    pub dict_terms: usize,
    /// Estimated bytes of kept vector entries (the budget's currency).
    pub corpus_bytes: usize,
    /// k-means iterations to convergence.
    pub kmeans_iterations: usize,
    /// Whether k-means hit its movement threshold before `max_iterations`.
    pub kmeans_converged: bool,
    /// Non-empty clusters in the k-means partition.
    pub kmeans_clusters: usize,
    /// FNV-1a over the per-page k-means assignment vector.
    pub assignment_hash: u64,
    /// FNV-1a over the sorted k-means cluster sizes.
    pub cluster_sizes_hash: u64,
    /// FNV-1a over the HAC sample partition (0 when the sample is empty).
    pub hac_hash: u64,
    /// Peak resident set size in kB (`/proc/self/status` `VmHWM`; 0 when
    /// unavailable).
    pub peak_rss_kb: u64,
    /// End-to-end wall-clock milliseconds.
    pub total_wall_ms: f64,
}

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a stream of `u64`s (little-endian), the same construction
/// the serving benchmark uses for its stream/results hashes.
fn fnv_u64s<I: IntoIterator<Item = u64>>(values: I) -> u64 {
    let mut h = FNV_OFFSET;
    for v in values {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
    }
    h
}

/// Hash a partition: cluster count, then each item's assignment (items
/// with no cluster hash as `u64::MAX`).
fn partition_hash(partition: &Partition) -> u64 {
    let assignments = partition.assignments();
    fnv_u64s(
        std::iter::once(partition.num_clusters() as u64)
            .chain(assignments.iter().map(|a| a.map_or(u64::MAX, |c| c as u64))),
    )
}

/// Peak RSS in kB from `/proc/self/status` (`VmHWM`), or 0 when the file
/// or field is unavailable (non-Linux platforms).
fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let digits: String = rest.chars().filter(char::is_ascii_digit).collect();
            return digits.parse().unwrap_or(0);
        }
    }
    0
}

/// A `ClusterSpace` view onto a deterministic sample of another space's
/// items: item `i` of the sample is item `indices[i]` of the inner space.
/// HAC is O(n²), so the bench runs it on this instead of the full corpus.
struct SampleSpace<'a, S> {
    inner: &'a S,
    indices: Vec<usize>,
}

impl<S: ClusterSpace> ClusterSpace for SampleSpace<'_, S> {
    type Centroid = S::Centroid;

    fn len(&self) -> usize {
        self.indices.len()
    }

    fn centroid(&self, members: &[usize]) -> Self::Centroid {
        let mapped: Vec<usize> = members.iter().map(|&m| self.indices[m]).collect();
        self.inner.centroid(&mapped)
    }

    fn similarity(&self, centroid: &Self::Centroid, item: usize) -> f64 {
        self.inner.similarity(centroid, self.indices[item])
    }

    fn centroid_similarity(&self, a: &Self::Centroid, b: &Self::Centroid) -> f64 {
        self.inner.centroid_similarity(a, b)
    }
}

/// Every `m`-th-ish index of `0..n`: `floor(i·n/m)` for `i in 0..m`, which
/// is strictly increasing whenever `m <= n`. A spread sample that is a
/// pure function of `(n, m)` — no RNG, so the digest stays seed-stable.
fn stride_sample(n: usize, m: usize) -> Vec<usize> {
    let m = m.min(n);
    (0..m).map(|i| i * n / m).collect()
}

/// Run the batch benchmark: drain `shard_source` (called with shard
/// indices `0, 1, 2, …` until it returns `None`), ingest under the
/// configured shard size and memory budget, vectorize, run sparse
/// k-means seeded from `config.seed`, and HAC over a stride sample.
///
/// Everything in the digest portion of the returned report is a pure
/// function of `config` and the shard source's output — thread count,
/// machine speed and shard partition do not affect it.
pub fn run_bench<F>(config: &BenchConfig, mut shard_source: F) -> BenchReport
where
    F: FnMut(usize) -> Option<Vec<String>>,
{
    let policy = config.policy();
    let obs = Obs::disabled();
    let opts = ModelOptions::default();
    let limits = IngestLimits::new()
        .with_shard_pages(config.shard_pages)
        .with_max_corpus_bytes(config.max_corpus_bytes);
    let total_start = Instant::now();
    let mut stages = Vec::with_capacity(5);
    let mut stage = |name: &'static str, items: usize, start: Instant| {
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        stages.push(BenchStage {
            name,
            wall_ms,
            items,
            pages_per_sec: items as f64 / (wall_ms / 1e3).max(1e-9),
        });
    };

    // ---- gen: drain the shard source -------------------------------
    let start = Instant::now();
    let mut shards: Vec<Vec<String>> = Vec::new();
    while let Some(shard) = shard_source(shards.len()) {
        shards.push(shard);
    }
    let pages: usize = shards.iter().map(Vec::len).sum();
    stage("gen", pages, start);

    // ---- ingest: sharded merge under the memory budget -------------
    let start = Instant::now();
    let mut merge = IngestMerge::new(&limits);
    for shard in &shards {
        let refs: Vec<&str> = shard.iter().map(String::as_str).collect();
        ingest_shard(&refs, &opts, &limits, policy, &obs, &mut merge);
    }
    drop(shards);
    let report: IngestReport = merge.report.clone();
    let corpus_bytes = merge.used_bytes;
    stage("ingest", pages, start);

    // ---- vectorize: IDF + vector freeze ----------------------------
    let start = Instant::now();
    let corpus = FormPageCorpus::finish(
        merge.dict,
        merge.pc_counts,
        merge.fc_counts,
        None,
        &opts,
        policy,
        &obs,
    );
    stage("vectorize", pages, start);

    // ---- kmeans: sparse kernel over the combined space -------------
    let start = Instant::now();
    let space = FormPageSpace::new(&corpus, FeatureConfig::combined());
    let n = space.len();
    let seeds = random_singleton_seeds(&space, config.k, &mut StdRng::seed_from_u64(config.seed));
    let outcome = kmeans_sparse_exec(&space, &seeds, &KMeansOptions::default(), policy);
    stage("kmeans", n, start);

    // ---- hac_sample: HAC over a stride sample ----------------------
    let start = Instant::now();
    let indices = stride_sample(n, config.hac_sample);
    let sample_len = indices.len();
    let hac_hash = if sample_len == 0 {
        0
    } else {
        let sample = SampleSpace {
            inner: &space,
            indices,
        };
        let singletons: Vec<Vec<usize>> = (0..sample_len).map(|i| vec![i]).collect();
        let hac_opts = HacOptions {
            target_clusters: config.k,
            linkage: Linkage::Centroid,
        };
        partition_hash(&hac_exec(&sample, &singletons, &hac_opts, policy))
    };
    stage("hac_sample", sample_len, start);

    BenchReport {
        pages,
        shard_pages: config.shard_pages,
        seed: config.seed,
        k: config.k,
        hac_sample: config.hac_sample,
        threads: policy.threads(),
        stages,
        pages_ok: report.ok(),
        pages_degraded: report.degraded(),
        pages_quarantined: report.quarantined(),
        dict_terms: corpus.dict.len(),
        corpus_bytes,
        kmeans_iterations: outcome.iterations,
        kmeans_converged: outcome.converged,
        kmeans_clusters: outcome.partition.num_nonempty(),
        assignment_hash: partition_hash(&outcome.partition),
        cluster_sizes_hash: fnv_u64s({
            let mut sizes: Vec<u64> = outcome
                .partition
                .clusters()
                .iter()
                .map(|c| c.len() as u64)
                .collect();
            sizes.sort_unstable();
            sizes
        }),
        hac_hash,
        peak_rss_kb: peak_rss_kb(),
        total_wall_ms: total_start.elapsed().as_secs_f64() * 1e3,
    }
}

/// A float rendered as valid JSON: shortest round-trip for finite values,
/// `null` otherwise (the same convention as the serving layer's emitter).
fn number(value: f64) -> String {
    if value.is_finite() {
        format!("{value}")
    } else {
        "null".to_string()
    }
}

impl BenchReport {
    /// The digest body: every field that is a pure function of the
    /// configuration and corpus. Rendered identically by
    /// [`render_digest`](Self::render_digest) and embedded under
    /// `"digest"` by [`render_json`](Self::render_json), so the CI smoke
    /// job can extract and diff it from either artifact.
    fn digest_fields(&self, indent: &str) -> String {
        format!(
            "{i}\"pages\": {},\n{i}\"shard_pages\": {},\n{i}\"seed\": {},\n\
             {i}\"k\": {},\n{i}\"hac_sample\": {},\n{i}\"pages_ok\": {},\n\
             {i}\"pages_degraded\": {},\n{i}\"pages_quarantined\": {},\n\
             {i}\"dict_terms\": {},\n{i}\"corpus_bytes\": {},\n\
             {i}\"kmeans_iterations\": {},\n{i}\"kmeans_converged\": {},\n\
             {i}\"kmeans_clusters\": {},\n{i}\"assignment_hash\": \"{:016x}\",\n\
             {i}\"cluster_sizes_hash\": \"{:016x}\",\n{i}\"hac_hash\": \"{:016x}\"",
            self.pages,
            self.shard_pages,
            self.seed,
            self.k,
            self.hac_sample,
            self.pages_ok,
            self.pages_degraded,
            self.pages_quarantined,
            self.dict_terms,
            self.corpus_bytes,
            self.kmeans_iterations,
            self.kmeans_converged,
            self.kmeans_clusters,
            self.assignment_hash,
            self.cluster_sizes_hash,
            self.hac_hash,
            i = indent,
        )
    }

    /// The seed-determined digest document: byte-identical for two runs
    /// with the same configuration, on any machine, at any thread count.
    pub fn render_digest(&self) -> String {
        format!(
            "{{\n  \"bench\": \"batch\",\n{}\n}}\n",
            self.digest_fields("  ")
        )
    }

    /// The full report: the digest plus machine-dependent timings,
    /// throughput, thread count and peak RSS. Stable key order; future
    /// PRs append fields, never rename (the `BENCH_<n>.json` contract).
    pub fn render_json(&self) -> String {
        let stages: Vec<String> = self
            .stages
            .iter()
            .map(|s| {
                format!(
                    "    {{ \"stage\": \"{}\", \"items\": {}, \"wall_ms\": {}, \"pages_per_sec\": {} }}",
                    s.name,
                    s.items,
                    number(s.wall_ms),
                    number(s.pages_per_sec)
                )
            })
            .collect();
        format!(
            "{{\n  \"bench\": \"batch\",\n  \"digest\": {{\n{}\n  }},\n  \
             \"threads\": {},\n  \"stages\": [\n{}\n  ],\n  \
             \"peak_rss_kb\": {},\n  \"total_wall_ms\": {}\n}}\n",
            self.digest_fields("    "),
            self.threads,
            stages.join(",\n"),
            self.peak_rss_kb,
            number(self.total_wall_ms)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic no-dependency page: enough structure for the HTML
    /// ingest path (a form plus body text), vocabulary keyed by `index`.
    fn page(index: usize) -> String {
        let topic = ["airfare", "book", "car", "hotel"][index % 4];
        format!(
            "<html><head><title>{topic} search {index}</title></head><body>\
             <h1>find {topic} deals</h1>\
             <p>search our {topic} database number {index} for the best {topic} listings</p>\
             <form action=\"/q\"><input type=\"text\" name=\"{topic}\">\
             <input type=\"submit\" value=\"Search\"></form>\
             </body></html>"
        )
    }

    fn shards_of(total: usize, per_shard: usize) -> impl FnMut(usize) -> Option<Vec<String>> {
        move |s| {
            let start = s * per_shard;
            if start >= total {
                return None;
            }
            let end = (start + per_shard).min(total);
            Some((start..end).map(page).collect())
        }
    }

    fn cfg() -> BenchConfig {
        BenchConfig::new()
            .with_pages(40)
            .with_shard_pages(8)
            .with_k(4)
            .with_hac_sample(12)
            .with_seed(9)
    }

    #[test]
    fn report_accounts_for_every_page() {
        let r = run_bench(&cfg(), shards_of(40, 8));
        assert_eq!(r.pages, 40);
        assert_eq!(r.pages_ok + r.pages_degraded + r.pages_quarantined, 40);
        assert!(r.dict_terms > 0);
        assert!(r.corpus_bytes > 0);
        assert!(r.kmeans_clusters >= 1 && r.kmeans_clusters <= 4);
        assert_eq!(r.stages.len(), 5);
        let names: Vec<&str> = r.stages.iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            ["gen", "ingest", "vectorize", "kmeans", "hac_sample"]
        );
    }

    #[test]
    fn digest_is_identical_across_threads_and_shard_partition() {
        let base = run_bench(&cfg(), shards_of(40, 8)).render_digest();
        let threaded = run_bench(&cfg().with_threads(4), shards_of(40, 8)).render_digest();
        assert_eq!(base, threaded, "digest must not depend on the policy");
        // A different shard partition from the source feeds the same pages.
        let repartitioned = run_bench(&cfg(), shards_of(40, 3)).render_digest();
        assert_eq!(
            base, repartitioned,
            "digest must not depend on the shard source's partition"
        );
    }

    #[test]
    fn digest_depends_on_seed_and_budget() {
        let base = run_bench(&cfg(), shards_of(40, 8));
        let reseeded = run_bench(&cfg().with_seed(10), shards_of(40, 8));
        assert_ne!(
            base.assignment_hash, reseeded.assignment_hash,
            "k-means seeding must follow the seed"
        );
        let squeezed = run_bench(
            &cfg().with_max_corpus_bytes(base.corpus_bytes / 2),
            shards_of(40, 8),
        );
        assert!(squeezed.pages_quarantined > 0, "budget must bite");
        assert!(squeezed.corpus_bytes <= base.corpus_bytes / 2);
    }

    #[test]
    fn renders_are_stable_and_embed_the_digest() {
        let r = run_bench(&cfg(), shards_of(40, 8));
        let digest = r.render_digest();
        assert_eq!(
            digest,
            r.render_digest(),
            "digest render must be a pure function"
        );
        let json = r.render_json();
        for key in [
            "\"bench\": \"batch\"",
            "\"digest\"",
            "\"pages\"",
            "\"assignment_hash\"",
            "\"cluster_sizes_hash\"",
            "\"hac_hash\"",
            "\"stages\"",
            "\"pages_per_sec\"",
            "\"peak_rss_kb\"",
            "\"total_wall_ms\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // Digest lines appear verbatim (reindented) inside the full JSON.
        for line in digest.lines().filter(|l| l.starts_with("  \"")) {
            assert!(
                json.contains(line.trim()),
                "digest line {line:?} not embedded in the full report"
            );
        }
    }

    #[test]
    fn empty_source_yields_an_empty_but_valid_report() {
        let r = run_bench(&cfg(), |_| None::<Vec<String>>);
        assert_eq!(r.pages, 0);
        assert_eq!(r.pages_ok, 0);
        assert_eq!(r.hac_hash, 0, "no sample, no HAC hash");
        assert!(r.render_digest().contains("\"pages\": 0"));
    }

    #[test]
    fn stride_sample_is_spread_and_in_bounds() {
        assert_eq!(stride_sample(10, 5), vec![0, 2, 4, 6, 8]);
        assert_eq!(stride_sample(3, 10), vec![0, 1, 2], "clamped to n");
        assert!(stride_sample(0, 4).is_empty());
        let s = stride_sample(101, 7);
        assert_eq!(s.len(), 7);
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted, s, "strictly increasing, no duplicates");
    }

    #[test]
    fn fnv_matches_reference_construction() {
        // Hashing no values is the offset basis; one zero u64 is eight
        // zero bytes through FNV-1a.
        assert_eq!(fnv_u64s([]), 0xcbf2_9ce4_8422_2325);
        let mut expect = 0xcbf2_9ce4_8422_2325u64;
        for _ in 0..8 {
            expect = (expect ^ 0).wrapping_mul(0x0000_0100_0000_01b3);
        }
        assert_eq!(fnv_u64s([0u64]), expect);
    }
}
