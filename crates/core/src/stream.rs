//! Streaming ingestion with incremental clustering (ROADMAP item 1).
//!
//! The batch pipeline parses, vectorizes, and clusters a finished corpus in
//! one shot. [`StreamCorpus`] instead absorbs pages *as the crawler finds
//! them*: each arrival is fed chunk-by-chunk through the incremental HTML
//! parser, vectorized against the live [`TermDict`] with the corpus's
//! per-space collection statistics (updated per arrival, so streamed
//! vectors stay on the batch scale), appended to the corpus, and assigned
//! to the nearest existing cluster centroid immediately — the paper's §5
//! "classify new sources against built clusters", made operational.
//!
//! Nearest-centroid assignment slowly degrades a partition: centroids
//! absorb every arrival, including border cases a fresh k-means would place
//! elsewhere. Two repair mechanisms bound that decay, both running at
//! deterministic page-count boundaries so same-seed replays are
//! byte-identical (see DESIGN.md §16):
//!
//! * every [`repair_interval`](StreamConfig::repair_interval) arrivals, a
//!   **mini-batch pass** re-evaluates the arrivals since the last repair
//!   against current centroids (fanned out on the `cafc-exec` layer) and
//!   moves the ones that landed in the wrong cluster;
//! * after each mini-batch pass, **centroid drift** — how far centroids
//!   have moved since the last full clustering — is measured, and when it
//!   exceeds [`drift_threshold`](StreamConfig::drift_threshold) the whole
//!   corpus is re-clustered with k-means seeded from the current members,
//!   resetting the drift baseline.
//!
//! Observability: `stream.pages_assigned`, `stream.pages_quarantined`,
//! `stream.repairs`, `stream.moved`, and `stream.reclusters` counters plus
//! the `stream.drift` gauge.

use crate::incremental::IncrementalClusters;
use crate::ingest::{IngestLimits, PageOutcome};
use crate::model::{ingest_document, FormPageCorpus, ModelOptions};
use crate::space::{FeatureConfig, FormPageSpace};
use cafc_cluster::{kmeans_obs, ClusterSpace, KMeansOptions, Partition};
use cafc_exec::{par_map_slice, ExecPolicy};
use cafc_html::{strip_control_chars, StreamingParser};
use cafc_obs::Obs;
use cafc_text::TermId;
use cafc_vsm::{weigh, SparseVector};

/// Streaming-ingestion knobs.
///
/// Construct with [`StreamConfig::new`] plus the chainable `with_*`
/// setters; `#[non_exhaustive]` so future knobs are not breaking changes.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct StreamConfig {
    /// Feature spaces used for assignment and repair similarity.
    pub feature: FeatureConfig,
    /// Vectorization options; must match the seed corpus's build for the
    /// streamed vectors to live on the same scale.
    pub opts: ModelOptions,
    /// Hardened-ingestion limits applied to each arrival.
    pub limits: IngestLimits,
    /// Arrivals between repair passes.
    pub repair_interval: usize,
    /// Mean centroid drift (see [`IncrementalClusters::drift`]) above which
    /// a repair pass escalates to a full re-cluster.
    pub drift_threshold: f64,
    /// Iteration cap for the drift-triggered re-cluster.
    pub recluster_iterations: usize,
    /// Execution policy for repair passes and re-clustering.
    pub policy: ExecPolicy,
}

impl Default for StreamConfig {
    /// Combined FC+PC features, default model options and limits, a repair
    /// pass every 32 arrivals, re-cluster past 0.25 mean drift.
    fn default() -> Self {
        StreamConfig {
            feature: FeatureConfig::combined(),
            opts: ModelOptions::default(),
            limits: IngestLimits::default(),
            repair_interval: 32,
            drift_threshold: 0.25,
            recluster_iterations: 20,
            policy: ExecPolicy::Serial,
        }
    }
}

impl StreamConfig {
    /// The default configuration (same as `Default`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the feature spaces used for assignment similarity.
    pub fn with_feature(mut self, feature: FeatureConfig) -> Self {
        self.feature = feature;
        self
    }

    /// Set the vectorization options.
    pub fn with_opts(mut self, opts: ModelOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Set the per-arrival ingestion limits.
    pub fn with_limits(mut self, limits: IngestLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Set the number of arrivals between repair passes (minimum 1).
    pub fn with_repair_interval(mut self, interval: usize) -> Self {
        self.repair_interval = interval.max(1);
        self
    }

    /// Set the drift threshold that escalates repair to a re-cluster.
    pub fn with_drift_threshold(mut self, threshold: f64) -> Self {
        self.drift_threshold = threshold;
        self
    }

    /// Set the iteration cap for drift-triggered re-clustering.
    pub fn with_recluster_iterations(mut self, iterations: usize) -> Self {
        self.recluster_iterations = iterations.max(1);
        self
    }

    /// Set the execution policy for repair and re-cluster passes.
    pub fn with_policy(mut self, policy: ExecPolicy) -> Self {
        self.policy = policy;
        self
    }
}

/// What happened to one streamed-in page.
#[derive(Debug, Clone, PartialEq)]
pub struct Arrival {
    /// Corpus index of the page, if it was kept.
    pub page: Option<usize>,
    /// Cluster the page was assigned to, if it was kept.
    pub cluster: Option<usize>,
    /// The hardened-ingestion outcome (ok / degraded / quarantined).
    pub outcome: PageOutcome,
    /// Centroid drift measured by the repair pass, if one ran after this
    /// arrival.
    pub drift: Option<f64>,
    /// Items moved between clusters by the mini-batch pass, if one ran.
    pub moved: Option<usize>,
    /// Whether drift escalated the repair into a full re-cluster.
    pub reclustered: bool,
}

/// A clustered corpus that grows: seed it with a batch-built corpus and
/// partition, then stream pages in.
pub struct StreamCorpus {
    corpus: FormPageCorpus,
    clusters: IncrementalClusters,
    config: StreamConfig,
    obs: Obs,
    term_buf: Vec<TermId>,
    /// Pages appended since the last repair pass.
    recent: Vec<usize>,
    streamed: u64,
}

impl StreamCorpus {
    /// Wrap a batch-built corpus and its partition for streaming growth.
    pub fn new(
        corpus: FormPageCorpus,
        partition: &Partition,
        config: StreamConfig,
        obs: Obs,
    ) -> StreamCorpus {
        let clusters = {
            let space = FormPageSpace::new(&corpus, config.feature);
            IncrementalClusters::from_partition(&space, partition)
        };
        StreamCorpus {
            corpus,
            clusters,
            config,
            obs,
            term_buf: Vec::new(),
            recent: Vec::new(),
            streamed: 0,
        }
    }

    /// The corpus as it currently stands (seed pages plus kept arrivals).
    pub fn corpus(&self) -> &FormPageCorpus {
        &self.corpus
    }

    /// The current clustering state.
    pub fn clusters(&self) -> &IncrementalClusters {
        &self.clusters
    }

    /// Snapshot the current clustering as a [`Partition`].
    pub fn partition(&self) -> Partition {
        self.clusters.to_partition(self.corpus.len())
    }

    /// Total pages streamed in (kept or not).
    pub fn streamed(&self) -> u64 {
        self.streamed
    }

    /// Stream one page in as HTML chunks: incremental parse, hardened
    /// ingestion, vectorize against the live dictionary, append, assign.
    ///
    /// Chunks are pushed through a [`StreamingParser`] as they come —
    /// sanitized per chunk (control-char stripping is per-character, so
    /// chunking cannot change it) and truncated at the soft byte limit —
    /// then the document enters the same budgeted-analysis and outcome
    /// taxonomy as the batch pipeline.
    pub fn ingest_chunks<'a, I>(&mut self, chunks: I) -> Arrival
    where
        I: IntoIterator<Item = &'a str>,
    {
        self.streamed += 1;
        let mut reasons = Vec::new();
        let mut parser = StreamingParser::new();
        let mut bytes_seen = 0usize;
        let mut stripped_any = false;
        let mut truncated = false;
        for chunk in chunks {
            if bytes_seen >= self.config.limits.hard_max_bytes {
                // Past the hard limit the page is quarantined whatever its
                // content; stop paying for parsing it.
                bytes_seen += chunk.len();
                continue;
            }
            // Soft limit: feed only the prefix that fits, on a char
            // boundary — mid-tag cuts are what the streaming parser absorbs.
            let budget = self.config.limits.soft_max_bytes.saturating_sub(bytes_seen);
            bytes_seen += chunk.len();
            let fed = if chunk.len() > budget {
                truncated = true;
                let mut cut = budget;
                while cut > 0 && !chunk.is_char_boundary(cut) {
                    cut -= 1;
                }
                &chunk[..cut]
            } else {
                chunk
            };
            let (clean, stripped) = strip_control_chars(fed);
            stripped_any |= stripped;
            parser.push_chunk(&clean);
        }
        if bytes_seen > self.config.limits.hard_max_bytes {
            self.obs.incr("stream.pages_quarantined");
            return Arrival {
                page: None,
                cluster: None,
                outcome: PageOutcome::Quarantined {
                    error: crate::ingest::IngestError::TooLarge {
                        bytes: bytes_seen,
                        limit: self.config.limits.hard_max_bytes,
                    },
                },
                drift: None,
                moved: None,
                reclustered: false,
            };
        }
        if truncated {
            reasons.push(crate::ingest::DegradedReason::InputTruncated);
        }
        if stripped_any {
            reasons.push(crate::ingest::DegradedReason::ControlCharsStripped);
        }
        let (doc, stats) = parser.finish_with_stats();
        let (outcome, counts) = ingest_document(
            &doc,
            stats,
            reasons,
            &self.config.opts,
            &self.config.limits,
            &mut self.corpus.dict,
            &mut self.term_buf,
            &self.obs,
        );
        let Some((pc_counts, fc_counts)) = counts else {
            self.obs.incr("stream.pages_quarantined");
            return Arrival {
                page: None,
                cluster: None,
                outcome,
                drift: None,
                moved: None,
                reclustered: false,
            };
        };

        // Fold the arrival into the collection statistics first, then weigh
        // it — mirroring the batch build, where every page contributes to
        // the DF its own weights are computed from.
        self.corpus.pc_df.add_document(pc_counts.term_ids());
        self.corpus.fc_df.add_document(fc_counts.term_ids());
        let opts = &self.config.opts;
        let pc = weigh(&pc_counts, &self.corpus.pc_df, opts.tf, opts.idf);
        let fc = weigh(&fc_counts, &self.corpus.fc_df, opts.tf, opts.idf);
        let page = self.corpus.len();
        self.corpus.pc.push(pc);
        self.corpus.pc_tf.push(pc_counts.tf());
        self.corpus.fc.push(fc);
        // Streamed arrivals carry no in-link anchor text; the empty vector
        // drops out of the Equation 3 average.
        self.corpus.anchor.push(SparseVector::empty());
        self.obs.gauge("corpus.pages", self.corpus.len() as f64);
        self.obs
            .gauge("corpus.terms", self.corpus.dict.len() as f64);

        let space = FormPageSpace::new(&self.corpus, self.config.feature);
        let cluster = self.clusters.assign(&space, page);
        self.obs.incr("stream.pages_assigned");
        self.recent.push(page);

        let (drift, moved, reclustered) = if self.recent.len() >= self.config.repair_interval {
            let (drift, moved, reclustered) = self.repair();
            (Some(drift), Some(moved), reclustered)
        } else {
            (None, None, false)
        };
        Arrival {
            page: Some(page),
            cluster: Some(cluster),
            outcome,
            drift,
            moved,
            reclustered,
        }
    }

    /// Stream one page in as a single HTML string.
    pub fn ingest_html(&mut self, html: &str) -> Arrival {
        self.ingest_chunks(std::iter::once(html))
    }

    /// Run a repair pass now: mini-batch reassignment of the arrivals since
    /// the last pass, then drift measurement, escalating to a full
    /// re-cluster past the threshold. Returns `(drift, moved, reclustered)`.
    ///
    /// Deterministic for a given corpus state: the mini-batch fan-out uses
    /// the bit-stable `cafc-exec` primitives and moves are applied in page
    /// order, so every [`ExecPolicy`] produces the same clustering.
    pub fn repair(&mut self) -> (f64, usize, bool) {
        self.obs.incr("stream.repairs");
        let recent = std::mem::take(&mut self.recent);
        let moved = self.mini_batch(&recent);
        let space = FormPageSpace::new(&self.corpus, self.config.feature);
        let drift = self.clusters.drift(&space);
        self.obs.gauge("stream.drift", drift);
        let reclustered = drift > self.config.drift_threshold;
        if reclustered {
            self.obs.incr("stream.reclusters");
            let seeds: Vec<Vec<usize>> = self
                .clusters
                .members()
                .iter()
                .filter(|m| !m.is_empty())
                .cloned()
                .collect();
            let outcome = kmeans_obs(
                &space,
                &seeds,
                &KMeansOptions::new().with_max_iterations(self.config.recluster_iterations),
                self.config.policy,
                &self.obs,
            );
            self.clusters = IncrementalClusters::from_partition(&space, &outcome.partition);
        }
        (drift, moved, reclustered)
    }

    /// Re-evaluate `items` against current centroids in parallel and move
    /// the misassigned ones, refreshing affected centroids once at the end.
    /// Returns how many items moved.
    fn mini_batch(&mut self, items: &[usize]) -> usize {
        if items.is_empty() {
            return 0;
        }
        let space = FormPageSpace::new(&self.corpus, self.config.feature);
        let centroids: Vec<(usize, crate::space::MultiCentroid)> = self
            .clusters
            .members()
            .iter()
            .enumerate()
            .filter(|(_, m)| !m.is_empty())
            .map(|(ci, m)| (ci, space.centroid(m)))
            .collect();
        if centroids.is_empty() {
            return 0;
        }
        // One closure per item, read-only over the centroid snapshot — the
        // same floats under every policy.
        let best: Vec<usize> = par_map_slice(self.config.policy, items, |_, &item| {
            let mut best = centroids[0].0;
            let mut best_sim = f64::NEG_INFINITY;
            for (ci, centroid) in &centroids {
                let sim = space.similarity(centroid, item);
                if sim > best_sim {
                    best_sim = sim;
                    best = *ci;
                }
            }
            best
        });
        let mut moved = 0usize;
        let mut touched: Vec<usize> = Vec::new();
        for (&item, &target) in items.iter().zip(&best) {
            let Some(current) = self
                .clusters
                .members()
                .iter()
                .position(|m| m.contains(&item))
            else {
                continue;
            };
            if current != target {
                self.clusters.move_item(item, current, target);
                moved += 1;
                touched.push(current);
                touched.push(target);
            }
        }
        touched.sort_unstable();
        touched.dedup();
        let space = FormPageSpace::new(&self.corpus, self.config.feature);
        self.clusters.refresh_centroids(&space, &touched);
        if moved > 0 {
            self.obs.add("stream.moved", moved as u64);
        }
        moved
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cafc_obs::Obs;

    const AIRFARE: [&str; 2] = [
        "<p>airfare flights travel airline deals</p><form>departure <input name=a></form>",
        "<p>flights airfare vacation travel</p><form>arrival <input name=b></form>",
    ];
    const CAREERS: [&str; 2] = [
        "<p>careers employment salary resume</p><form>keywords <input name=c></form>",
        "<p>employment careers hiring resume</p><form>category <input name=d></form>",
    ];

    /// Batch-build the 4 seed pages and wrap them for streaming.
    fn seeded(config: StreamConfig, obs: Obs) -> StreamCorpus {
        let pages = AIRFARE.iter().chain(CAREERS.iter()).copied();
        let corpus = FormPageCorpus::from_html(pages, &config.opts);
        let partition = Partition::new(vec![vec![0, 1], vec![2, 3]], 4);
        StreamCorpus::new(corpus, &partition, config, obs)
    }

    const ARRIVAL_AIRFARE: &str = "<title>airfare deals</title>\
         <p>airline flights airfare deals</p><form>departure <input name=a></form>";
    const ARRIVAL_CAREERS: &str = "<title>careers hiring</title>\
         <p>careers salary openings hiring</p><form>keywords <input name=c></form>";

    #[test]
    fn arrivals_join_matching_clusters() {
        let mut sc = seeded(StreamConfig::new(), Obs::disabled());
        let a = sc.ingest_html(ARRIVAL_AIRFARE);
        assert_eq!(a.page, Some(4));
        assert_eq!(a.cluster, Some(0));
        assert_eq!(a.outcome, PageOutcome::Ok);
        let b = sc.ingest_html(ARRIVAL_CAREERS);
        assert_eq!(b.page, Some(5));
        assert_eq!(b.cluster, Some(1));
        assert_eq!(sc.corpus().len(), 6);
        assert_eq!(sc.streamed(), 2);
        let partition = sc.partition();
        assert_eq!(partition.clusters()[0], vec![0, 1, 4]);
        assert_eq!(partition.clusters()[1], vec![2, 3, 5]);
    }

    #[test]
    fn chunked_ingestion_matches_whole() {
        // The same page pushed whole or in tiny chunks — including cuts
        // inside tags — must produce the identical arrival and clustering.
        let mut whole = seeded(StreamConfig::new(), Obs::disabled());
        let mut chunked = seeded(StreamConfig::new(), Obs::disabled());
        for page in [ARRIVAL_AIRFARE, ARRIVAL_CAREERS] {
            let a = whole.ingest_html(page);
            let pieces: Vec<&str> = page
                .as_bytes()
                .chunks(3)
                .map(|c| std::str::from_utf8(c).expect("ascii page"))
                .collect();
            let b = chunked.ingest_chunks(pieces.iter().copied());
            assert_eq!(a, b, "page {page:?} diverged under chunking");
        }
        assert_eq!(whole.partition(), chunked.partition());
        assert_eq!(whole.corpus().pc, chunked.corpus().pc);
        assert_eq!(whole.corpus().fc, chunked.corpus().fc);
    }

    #[test]
    fn oversized_arrival_is_quarantined() {
        let config = StreamConfig::new().with_limits(IngestLimits::new().with_hard_max_bytes(64));
        let mut sc = seeded(config, Obs::disabled());
        let big = format!("<p>{}</p>", "airfare ".repeat(32));
        let arrival = sc.ingest_html(&big);
        assert_eq!(arrival.page, None);
        assert_eq!(arrival.cluster, None);
        assert!(
            matches!(
                arrival.outcome,
                PageOutcome::Quarantined {
                    error: crate::ingest::IngestError::TooLarge { .. }
                }
            ),
            "outcome: {:?}",
            arrival.outcome
        );
        assert_eq!(sc.corpus().len(), 4, "quarantined page must not be kept");
        assert_eq!(sc.streamed(), 1);
    }

    #[test]
    fn empty_page_content_is_quarantined_without_breaking_the_stream() {
        let mut sc = seeded(StreamConfig::new(), Obs::disabled());
        let arrival = sc.ingest_html("<form><input name=only></form>");
        assert_eq!(arrival.page, None);
        assert!(matches!(arrival.outcome, PageOutcome::Quarantined { .. }));
        // The stream keeps going afterwards.
        let next = sc.ingest_html(ARRIVAL_AIRFARE);
        assert_eq!(next.page, Some(4));
        assert_eq!(next.cluster, Some(0));
    }

    #[test]
    fn soft_limit_truncates_and_degrades() {
        let config = StreamConfig::new().with_limits(IngestLimits::new().with_soft_max_bytes(70));
        let mut sc = seeded(config, Obs::disabled());
        let long = format!(
            "<p>airfare flights travel airline deals {}</p>",
            "filler ".repeat(40)
        );
        let arrival = sc.ingest_html(&long);
        assert_eq!(arrival.page, Some(4), "soft-limited page is kept");
        match &arrival.outcome {
            PageOutcome::Degraded { reasons } => assert!(
                reasons.contains(&crate::ingest::DegradedReason::InputTruncated),
                "reasons: {reasons:?}"
            ),
            other => panic!("expected Degraded, got {other:?}"),
        }
    }

    #[test]
    fn repair_runs_at_the_configured_interval() {
        let obs = Obs::enabled();
        let config = StreamConfig::new().with_repair_interval(2);
        let mut sc = seeded(config, obs.clone());
        let first = sc.ingest_html(ARRIVAL_AIRFARE);
        assert_eq!(first.drift, None, "no repair before the interval");
        let second = sc.ingest_html(ARRIVAL_CAREERS);
        assert!(second.drift.is_some(), "repair fires on the interval");
        assert_eq!(second.moved, Some(0), "well-separated arrivals stay put");
        let snap = obs.snapshot();
        let count = |name: &str| {
            snap.counters
                .iter()
                .find(|(k, _)| k == name)
                .map_or(0, |(_, v)| *v)
        };
        assert_eq!(count("stream.pages_assigned"), 2);
        assert_eq!(count("stream.repairs"), 1);
        assert!(
            snap.gauges.iter().any(|(k, _)| k == "stream.drift"),
            "drift gauge recorded"
        );
    }

    #[test]
    fn mini_batch_moves_a_misplaced_arrival_back() {
        let mut sc = seeded(StreamConfig::new(), Obs::enabled());
        let a = sc.ingest_html(ARRIVAL_AIRFARE);
        sc.ingest_html(ARRIVAL_CAREERS);
        // Forge a wrong state: push the airfare arrival into the careers
        // cluster, then let the repair pass notice and undo it.
        sc.clusters.move_item(a.page.unwrap(), 0, 1);
        let (_, moved, _) = sc.repair();
        assert_eq!(moved, 1, "repair must move the misplaced arrival");
        assert_eq!(sc.partition().clusters()[0], vec![0, 1, 4]);
        assert_eq!(sc.partition().clusters()[1], vec![2, 3, 5]);
    }

    #[test]
    fn drift_past_threshold_triggers_a_recluster() {
        // A negative threshold makes any drift (always >= 0) escalate.
        let obs = Obs::enabled();
        let config = StreamConfig::new()
            .with_repair_interval(2)
            .with_drift_threshold(-1.0);
        let mut sc = seeded(config, obs.clone());
        sc.ingest_html(ARRIVAL_AIRFARE);
        let second = sc.ingest_html(ARRIVAL_CAREERS);
        assert!(second.reclustered, "arrival: {second:?}");
        let snap = obs.snapshot();
        assert!(snap
            .counters
            .iter()
            .any(|(k, v)| k == "stream.reclusters" && *v == 1));
        // The re-cluster keeps the two topical clusters intact.
        let clusters = sc.partition();
        assert_eq!(clusters.num_clusters(), 2);
        assert_eq!(clusters.num_assigned(), 6);
    }

    #[test]
    fn parallel_repair_matches_serial() {
        let serial = {
            let config = StreamConfig::new().with_repair_interval(2);
            let mut sc = seeded(config, Obs::disabled());
            for page in [ARRIVAL_AIRFARE, ARRIVAL_CAREERS, ARRIVAL_AIRFARE] {
                sc.ingest_html(page);
            }
            sc.partition()
        };
        let parallel = {
            let config = StreamConfig::new()
                .with_repair_interval(2)
                .with_policy(ExecPolicy::Parallel { threads: 3 });
            let mut sc = seeded(config, Obs::disabled());
            for page in [ARRIVAL_AIRFARE, ARRIVAL_CAREERS, ARRIVAL_AIRFARE] {
                sc.ingest_html(page);
            }
            sc.partition()
        };
        assert_eq!(serial, parallel);
    }

    #[test]
    fn same_input_replays_identically() {
        let run = || {
            let config = StreamConfig::new().with_repair_interval(3);
            let mut sc = seeded(config, Obs::disabled());
            let arrivals: Vec<Arrival> = [
                ARRIVAL_AIRFARE,
                ARRIVAL_CAREERS,
                "<p>resume employment salary careers</p><form>industry <input name=h></form>",
                "<p>travel airfare airline vacation</p><form>cabin <input name=g></form>",
            ]
            .iter()
            .map(|page| sc.ingest_html(page))
            .collect();
            (arrivals, sc.partition())
        };
        assert_eq!(run(), run());
    }
}
