//! The clustering space over form pages: Equation 3 similarity and
//! Equation 4 centroids, generic over which feature spaces participate.

use crate::model::FormPageCorpus;
use cafc_cluster::{ClusterSpace, SparseClusterSpace};
use cafc_vsm::SparseVector;

/// Which feature spaces contribute to similarity, and with what weights
/// (the `C1`/`C2` of Equation 3; the paper uses `C1 = C2 = 1`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FeatureConfig {
    /// Form contents only.
    FcOnly,
    /// Page contents only.
    PcOnly,
    /// `sim = (C1·cos(PC) + C2·cos(FC)) / (C1 + C2)` — the paper's FC+PC.
    Combined {
        /// Page-content weight `C1`.
        c1: f64,
        /// Form-content weight `C2`.
        c2: f64,
    },
    /// The §6 extension: PC + FC + in-link anchor text.
    WithAnchors {
        /// Page-content weight.
        c1: f64,
        /// Form-content weight.
        c2: f64,
        /// Anchor-text weight.
        c3: f64,
    },
}

impl FeatureConfig {
    /// The paper's headline configuration: FC+PC with equal weights.
    pub fn combined() -> Self {
        FeatureConfig::Combined { c1: 1.0, c2: 1.0 }
    }
}

impl Default for FeatureConfig {
    fn default() -> Self {
        FeatureConfig::combined()
    }
}

/// A multi-space centroid (Equation 4: per-space member average).
#[derive(Debug, Clone, Default)]
pub struct MultiCentroid {
    /// Page-content centroid.
    pub pc: SparseVector,
    /// Form-content centroid.
    pub fc: SparseVector,
    /// Anchor-text centroid.
    pub anchor: SparseVector,
}

/// The [`ClusterSpace`] over a [`FormPageCorpus`].
#[derive(Debug, Clone, Copy)]
pub struct FormPageSpace<'a> {
    corpus: &'a FormPageCorpus,
    config: FeatureConfig,
}

impl<'a> FormPageSpace<'a> {
    /// Wrap a corpus with a feature configuration.
    pub fn new(corpus: &'a FormPageCorpus, config: FeatureConfig) -> Self {
        FormPageSpace { corpus, config }
    }

    /// The underlying corpus.
    pub fn corpus(&self) -> &'a FormPageCorpus {
        self.corpus
    }

    /// The feature configuration.
    pub fn config(&self) -> FeatureConfig {
        self.config
    }

    /// Equation 3: the weighted average of per-space cosines **over the
    /// spaces that are actually enabled and populated**. `anchor` is `None`
    /// when the anchor space carries no signal for the pair (both vectors
    /// empty — e.g. a corpus built without in-link anchor text); a missing
    /// space must drop out of both the numerator *and* the denominator,
    /// otherwise an anchor-less corpus under [`FeatureConfig::WithAnchors`]
    /// would have every similarity diluted by `(c1+c2)/(c1+c2+c3)`.
    fn combine(&self, pc: f64, fc: f64, anchor: Option<f64>) -> f64 {
        match self.config {
            FeatureConfig::FcOnly => fc,
            FeatureConfig::PcOnly => pc,
            FeatureConfig::Combined { c1, c2 } => (c1 * pc + c2 * fc) / (c1 + c2),
            FeatureConfig::WithAnchors { c1, c2, c3 } => match anchor {
                Some(anchor) => (c1 * pc + c2 * fc + c3 * anchor) / (c1 + c2 + c3),
                None => (c1 * pc + c2 * fc) / (c1 + c2),
            },
        }
    }
}

/// The anchor-space cosine for [`FormPageSpace::combine`]: `None` when the
/// space is silent for this pair (both vectors empty), so it cannot dilute
/// the Equation 3 average.
fn anchor_cosine(a: &SparseVector, b: &SparseVector) -> Option<f64> {
    if a.is_empty() && b.is_empty() {
        None
    } else {
        Some(a.cosine(b))
    }
}

/// Term-key tags for [`SparseClusterSpace`]: the three feature spaces
/// share one `u64` key space by packing a space tag into the high 32 bits
/// above the 32-bit [`cafc_text::TermId`], so a page-content term can
/// never collide with the same term id in form contents or anchor text.
const PC_TAG: u64 = 0 << 32;
const FC_TAG: u64 = 1u64 << 32;
const ANCHOR_TAG: u64 = 2u64 << 32;

impl FormPageSpace<'_> {
    /// Enumerate the tagged term keys of one page or centroid (its three
    /// per-space vectors), restricted to the spaces the [`FeatureConfig`]
    /// lets contribute to Equation 3. Shared by items and centroids so
    /// both sides of the candidate index agree on the key space.
    fn for_each_term_key(
        &self,
        pc: &SparseVector,
        fc: &SparseVector,
        anchor: &SparseVector,
        f: &mut dyn FnMut(u64),
    ) {
        let (use_pc, use_fc, use_anchor) = match self.config {
            FeatureConfig::FcOnly => (false, true, false),
            FeatureConfig::PcOnly => (true, false, false),
            FeatureConfig::Combined { .. } => (true, true, false),
            FeatureConfig::WithAnchors { .. } => (true, true, true),
        };
        if use_pc {
            for &(t, _) in pc.entries() {
                f(PC_TAG | t.0 as u64);
            }
        }
        if use_fc {
            for &(t, _) in fc.entries() {
                f(FC_TAG | t.0 as u64);
            }
        }
        if use_anchor {
            for &(t, _) in anchor.entries() {
                f(ANCHOR_TAG | t.0 as u64);
            }
        }
    }
}

/// The sparse-kernel contract (see `cafc_cluster::sparse`): similarities
/// are in `[0, 1]` and a (centroid, item) pair with disjoint key sets has
/// similarity exactly `0.0`. Both hold here **provided the
/// [`FeatureConfig`] weights are non-negative, finite, and positively
/// summed** (the paper's configurations all are): TF-IDF weights are
/// non-negative, so each per-space cosine of a disjoint pair has dot
/// product exactly `0.0` (or an empty-vector norm, which short-circuits
/// to `0.0`), a silent anchor space contributes `None`/`Some(0.0)`, and
/// Equation 3's weighted average of exact zeros is exactly `0.0`.
impl SparseClusterSpace for FormPageSpace<'_> {
    fn for_each_item_term(&self, item: usize, f: &mut dyn FnMut(u64)) {
        self.for_each_term_key(
            &self.corpus.pc[item],
            &self.corpus.fc[item],
            &self.corpus.anchor[item],
            f,
        );
    }

    fn for_each_centroid_term(&self, centroid: &MultiCentroid, f: &mut dyn FnMut(u64)) {
        self.for_each_term_key(&centroid.pc, &centroid.fc, &centroid.anchor, f);
    }
}

impl ClusterSpace for FormPageSpace<'_> {
    type Centroid = MultiCentroid;

    fn len(&self) -> usize {
        self.corpus.len()
    }

    fn centroid(&self, members: &[usize]) -> MultiCentroid {
        MultiCentroid {
            pc: SparseVector::centroid(members.iter().map(|&m| &self.corpus.pc[m])),
            fc: SparseVector::centroid(members.iter().map(|&m| &self.corpus.fc[m])),
            anchor: SparseVector::centroid(members.iter().map(|&m| &self.corpus.anchor[m])),
        }
    }

    fn similarity(&self, centroid: &MultiCentroid, item: usize) -> f64 {
        self.combine(
            centroid.pc.cosine(&self.corpus.pc[item]),
            centroid.fc.cosine(&self.corpus.fc[item]),
            anchor_cosine(&centroid.anchor, &self.corpus.anchor[item]),
        )
    }

    fn centroid_similarity(&self, a: &MultiCentroid, b: &MultiCentroid) -> f64 {
        self.combine(
            a.pc.cosine(&b.pc),
            a.fc.cosine(&b.fc),
            anchor_cosine(&a.anchor, &b.anchor),
        )
    }

    fn item_similarity(&self, a: usize, b: usize) -> f64 {
        self.combine(
            self.corpus.pc[a].cosine(&self.corpus.pc[b]),
            self.corpus.fc[a].cosine(&self.corpus.fc[b]),
            anchor_cosine(&self.corpus.anchor[a], &self.corpus.anchor[b]),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{FormPageCorpus, ModelOptions};

    fn corpus() -> FormPageCorpus {
        // Two airfare-ish pages, one job page. Body text differs from form
        // text so FC and PC pull in different directions.
        let pages = [
            "<title>Flights</title><p>airfare travel deals vacation</p>\
             <form>departure arrival <input name=a></form>",
            "<p>airfare travel bargain vacation</p>\
             <form>departure return cabin <input name=b></form>",
            "<title>Jobs</title><p>careers employment salary resume</p>\
             <form>keywords category location <input name=c></form>",
        ];
        FormPageCorpus::from_html(pages.iter().copied(), &ModelOptions::default())
    }

    #[test]
    fn similar_domain_pages_are_closer() {
        let c = corpus();
        let space = FormPageSpace::new(&c, FeatureConfig::combined());
        let same = space.item_similarity(0, 1);
        let diff = space.item_similarity(0, 2);
        assert!(
            same > diff,
            "same-domain sim {same} <= cross-domain sim {diff}"
        );
    }

    #[test]
    fn fc_only_ignores_body_text() {
        let pages = [
            // Identical forms, wildly different bodies.
            "<p>airfare travel flights</p><form>departure city <input name=a></form>",
            "<p>careers salary resume</p><form>departure city <input name=b></form>",
            "<p>third page noise words</p><form>other things <input name=c></form>",
        ];
        let c = FormPageCorpus::from_html(pages.iter().copied(), &ModelOptions::default());
        let fc_space = FormPageSpace::new(&c, FeatureConfig::FcOnly);
        let sim = fc_space.item_similarity(0, 1);
        assert!(
            (sim - 1.0).abs() < 1e-9,
            "identical forms must have FC sim 1, got {sim}"
        );
        let pc_space = FormPageSpace::new(&c, FeatureConfig::PcOnly);
        assert!(pc_space.item_similarity(0, 1) < 0.5);
    }

    #[test]
    fn combined_is_average_of_spaces() {
        let c = corpus();
        let fc = FormPageSpace::new(&c, FeatureConfig::FcOnly).item_similarity(0, 1);
        let pc = FormPageSpace::new(&c, FeatureConfig::PcOnly).item_similarity(0, 1);
        let both = FormPageSpace::new(&c, FeatureConfig::combined()).item_similarity(0, 1);
        assert!(((fc + pc) / 2.0 - both).abs() < 1e-12);
    }

    #[test]
    fn unequal_weights_shift_the_average() {
        let c = corpus();
        let fc = FormPageSpace::new(&c, FeatureConfig::FcOnly).item_similarity(0, 1);
        let pc = FormPageSpace::new(&c, FeatureConfig::PcOnly).item_similarity(0, 1);
        let lopsided = FormPageSpace::new(&c, FeatureConfig::Combined { c1: 3.0, c2: 1.0 })
            .item_similarity(0, 1);
        assert!(((3.0 * pc + fc) / 4.0 - lopsided).abs() < 1e-12);
    }

    #[test]
    fn centroid_similarity_matches_item_for_singletons() {
        let c = corpus();
        let space = FormPageSpace::new(&c, FeatureConfig::combined());
        let ca = space.centroid(&[0]);
        let cb = space.centroid(&[2]);
        assert!((space.centroid_similarity(&ca, &cb) - space.item_similarity(0, 2)).abs() < 1e-12);
    }

    #[test]
    fn empty_anchor_space_does_not_dilute_similarity() {
        // `from_html` builds no anchor vectors, so WithAnchors over this
        // corpus must degrade to exactly the two-space Equation 3 —
        // anchor-off and anchor-empty give identical similarities.
        let c = corpus();
        let combined = FormPageSpace::new(&c, FeatureConfig::Combined { c1: 2.0, c2: 1.0 });
        let with_anchors = FormPageSpace::new(
            &c,
            FeatureConfig::WithAnchors {
                c1: 2.0,
                c2: 1.0,
                c3: 5.0,
            },
        );
        for a in 0..3 {
            for b in 0..3 {
                let off = combined.item_similarity(a, b);
                let empty = with_anchors.item_similarity(a, b);
                assert_eq!(
                    off.to_bits(),
                    empty.to_bits(),
                    "sim({a},{b}): anchor-off {off} != anchor-empty {empty}"
                );
            }
        }
        // Same for the centroid paths used by k-means/HAC.
        let ca = with_anchors.centroid(&[0, 1]);
        let cb = with_anchors.centroid(&[2]);
        assert_eq!(
            with_anchors.centroid_similarity(&ca, &cb).to_bits(),
            combined.centroid_similarity(&ca, &cb).to_bits()
        );
        assert_eq!(
            with_anchors.similarity(&ca, 2).to_bits(),
            combined.similarity(&ca, 2).to_bits()
        );
    }

    #[test]
    fn populated_anchor_space_still_weighs_in() {
        let c = corpus();
        let space = FormPageSpace::new(
            &c,
            FeatureConfig::WithAnchors {
                c1: 1.0,
                c2: 1.0,
                c3: 2.0,
            },
        );
        // A present (even one-sided) anchor signal re-enters the average.
        assert_eq!(space.combine(0.8, 0.4, Some(1.0)), (0.8 + 0.4 + 2.0) / 4.0);
        assert_eq!(space.combine(0.8, 0.4, None), (0.8 + 0.4) / 2.0);
    }

    #[test]
    fn anchor_cosine_is_none_only_when_both_sides_empty() {
        let empty = SparseVector::default();
        let full = SparseVector::from_entries(vec![(cafc_text::TermId(0), 1.0)]);
        assert_eq!(anchor_cosine(&empty, &empty), None);
        assert_eq!(anchor_cosine(&full, &empty), Some(0.0));
        assert_eq!(anchor_cosine(&empty, &full), Some(0.0));
        assert_eq!(anchor_cosine(&full, &full), Some(1.0));
    }

    #[test]
    fn term_keys_respect_feature_config() {
        let c = corpus();
        let collect = |config: FeatureConfig| {
            let space = FormPageSpace::new(&c, config);
            let mut keys = Vec::new();
            space.for_each_item_term(0, &mut |k| keys.push(k));
            keys
        };
        let fc_only = collect(FeatureConfig::FcOnly);
        assert!(!fc_only.is_empty());
        assert!(
            fc_only.iter().all(|k| k >> 32 == 1),
            "FcOnly must enumerate only FC-tagged keys"
        );
        let pc_only = collect(FeatureConfig::PcOnly);
        assert!(pc_only.iter().all(|k| k >> 32 == 0));
        let combined = collect(FeatureConfig::combined());
        assert_eq!(combined.len(), fc_only.len() + pc_only.len());
        // Shared vocabulary across spaces stays distinct under the tags:
        // a PC key never equals an FC key.
        assert!(pc_only.iter().all(|k| !fc_only.contains(k)));
    }

    #[test]
    fn sparse_kmeans_matches_dense_on_form_pages() {
        use cafc_cluster::{kmeans_exec, kmeans_sparse_exec, ExecPolicy, KMeansOptions};
        let c = corpus();
        for config in [
            FeatureConfig::FcOnly,
            FeatureConfig::PcOnly,
            FeatureConfig::combined(),
            FeatureConfig::WithAnchors {
                c1: 1.0,
                c2: 2.0,
                c3: 1.0,
            },
        ] {
            let space = FormPageSpace::new(&c, config);
            let seeds = [vec![0], vec![2]];
            for policy in [ExecPolicy::Serial, ExecPolicy::Parallel { threads: 3 }] {
                let dense = kmeans_exec(&space, &seeds, &KMeansOptions::strict(), policy);
                let sparse = kmeans_sparse_exec(&space, &seeds, &KMeansOptions::strict(), policy);
                assert_eq!(sparse.partition, dense.partition, "{config:?} {policy:?}");
                assert_eq!(sparse.iterations, dense.iterations, "{config:?} {policy:?}");
            }
        }
    }

    #[test]
    fn similarity_in_unit_interval() {
        let c = corpus();
        for config in [
            FeatureConfig::FcOnly,
            FeatureConfig::PcOnly,
            FeatureConfig::combined(),
            FeatureConfig::WithAnchors {
                c1: 1.0,
                c2: 1.0,
                c3: 1.0,
            },
        ] {
            let space = FormPageSpace::new(&c, config);
            for a in 0..3 {
                for b in 0..3 {
                    let s = space.item_similarity(a, b);
                    assert!((0.0..=1.0).contains(&s), "{config:?}: sim({a},{b}) = {s}");
                }
            }
        }
    }
}
