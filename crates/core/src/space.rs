//! The clustering space over form pages: Equation 3 similarity and
//! Equation 4 centroids, generic over which feature spaces participate.

use crate::model::FormPageCorpus;
use cafc_cluster::ClusterSpace;
use cafc_vsm::SparseVector;

/// Which feature spaces contribute to similarity, and with what weights
/// (the `C1`/`C2` of Equation 3; the paper uses `C1 = C2 = 1`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FeatureConfig {
    /// Form contents only.
    FcOnly,
    /// Page contents only.
    PcOnly,
    /// `sim = (C1·cos(PC) + C2·cos(FC)) / (C1 + C2)` — the paper's FC+PC.
    Combined {
        /// Page-content weight `C1`.
        c1: f64,
        /// Form-content weight `C2`.
        c2: f64,
    },
    /// The §6 extension: PC + FC + in-link anchor text.
    WithAnchors {
        /// Page-content weight.
        c1: f64,
        /// Form-content weight.
        c2: f64,
        /// Anchor-text weight.
        c3: f64,
    },
}

impl FeatureConfig {
    /// The paper's headline configuration: FC+PC with equal weights.
    pub fn combined() -> Self {
        FeatureConfig::Combined { c1: 1.0, c2: 1.0 }
    }
}

impl Default for FeatureConfig {
    fn default() -> Self {
        FeatureConfig::combined()
    }
}

/// A multi-space centroid (Equation 4: per-space member average).
#[derive(Debug, Clone, Default)]
pub struct MultiCentroid {
    /// Page-content centroid.
    pub pc: SparseVector,
    /// Form-content centroid.
    pub fc: SparseVector,
    /// Anchor-text centroid.
    pub anchor: SparseVector,
}

/// The [`ClusterSpace`] over a [`FormPageCorpus`].
#[derive(Debug, Clone, Copy)]
pub struct FormPageSpace<'a> {
    corpus: &'a FormPageCorpus,
    config: FeatureConfig,
}

impl<'a> FormPageSpace<'a> {
    /// Wrap a corpus with a feature configuration.
    pub fn new(corpus: &'a FormPageCorpus, config: FeatureConfig) -> Self {
        FormPageSpace { corpus, config }
    }

    /// The underlying corpus.
    pub fn corpus(&self) -> &'a FormPageCorpus {
        self.corpus
    }

    /// The feature configuration.
    pub fn config(&self) -> FeatureConfig {
        self.config
    }

    fn combine(&self, pc: f64, fc: f64, anchor: f64) -> f64 {
        match self.config {
            FeatureConfig::FcOnly => fc,
            FeatureConfig::PcOnly => pc,
            FeatureConfig::Combined { c1, c2 } => (c1 * pc + c2 * fc) / (c1 + c2),
            FeatureConfig::WithAnchors { c1, c2, c3 } => {
                (c1 * pc + c2 * fc + c3 * anchor) / (c1 + c2 + c3)
            }
        }
    }
}

impl ClusterSpace for FormPageSpace<'_> {
    type Centroid = MultiCentroid;

    fn len(&self) -> usize {
        self.corpus.len()
    }

    fn centroid(&self, members: &[usize]) -> MultiCentroid {
        MultiCentroid {
            pc: SparseVector::centroid(members.iter().map(|&m| &self.corpus.pc[m])),
            fc: SparseVector::centroid(members.iter().map(|&m| &self.corpus.fc[m])),
            anchor: SparseVector::centroid(members.iter().map(|&m| &self.corpus.anchor[m])),
        }
    }

    fn similarity(&self, centroid: &MultiCentroid, item: usize) -> f64 {
        self.combine(
            centroid.pc.cosine(&self.corpus.pc[item]),
            centroid.fc.cosine(&self.corpus.fc[item]),
            centroid.anchor.cosine(&self.corpus.anchor[item]),
        )
    }

    fn centroid_similarity(&self, a: &MultiCentroid, b: &MultiCentroid) -> f64 {
        self.combine(
            a.pc.cosine(&b.pc),
            a.fc.cosine(&b.fc),
            a.anchor.cosine(&b.anchor),
        )
    }

    fn item_similarity(&self, a: usize, b: usize) -> f64 {
        self.combine(
            self.corpus.pc[a].cosine(&self.corpus.pc[b]),
            self.corpus.fc[a].cosine(&self.corpus.fc[b]),
            self.corpus.anchor[a].cosine(&self.corpus.anchor[b]),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{FormPageCorpus, ModelOptions};

    fn corpus() -> FormPageCorpus {
        // Two airfare-ish pages, one job page. Body text differs from form
        // text so FC and PC pull in different directions.
        let pages = [
            "<title>Flights</title><p>airfare travel deals vacation</p>\
             <form>departure arrival <input name=a></form>",
            "<p>airfare travel bargain vacation</p>\
             <form>departure return cabin <input name=b></form>",
            "<title>Jobs</title><p>careers employment salary resume</p>\
             <form>keywords category location <input name=c></form>",
        ];
        FormPageCorpus::from_html(pages.iter().copied(), &ModelOptions::default())
    }

    #[test]
    fn similar_domain_pages_are_closer() {
        let c = corpus();
        let space = FormPageSpace::new(&c, FeatureConfig::combined());
        let same = space.item_similarity(0, 1);
        let diff = space.item_similarity(0, 2);
        assert!(
            same > diff,
            "same-domain sim {same} <= cross-domain sim {diff}"
        );
    }

    #[test]
    fn fc_only_ignores_body_text() {
        let pages = [
            // Identical forms, wildly different bodies.
            "<p>airfare travel flights</p><form>departure city <input name=a></form>",
            "<p>careers salary resume</p><form>departure city <input name=b></form>",
            "<p>third page noise words</p><form>other things <input name=c></form>",
        ];
        let c = FormPageCorpus::from_html(pages.iter().copied(), &ModelOptions::default());
        let fc_space = FormPageSpace::new(&c, FeatureConfig::FcOnly);
        let sim = fc_space.item_similarity(0, 1);
        assert!(
            (sim - 1.0).abs() < 1e-9,
            "identical forms must have FC sim 1, got {sim}"
        );
        let pc_space = FormPageSpace::new(&c, FeatureConfig::PcOnly);
        assert!(pc_space.item_similarity(0, 1) < 0.5);
    }

    #[test]
    fn combined_is_average_of_spaces() {
        let c = corpus();
        let fc = FormPageSpace::new(&c, FeatureConfig::FcOnly).item_similarity(0, 1);
        let pc = FormPageSpace::new(&c, FeatureConfig::PcOnly).item_similarity(0, 1);
        let both = FormPageSpace::new(&c, FeatureConfig::combined()).item_similarity(0, 1);
        assert!(((fc + pc) / 2.0 - both).abs() < 1e-12);
    }

    #[test]
    fn unequal_weights_shift_the_average() {
        let c = corpus();
        let fc = FormPageSpace::new(&c, FeatureConfig::FcOnly).item_similarity(0, 1);
        let pc = FormPageSpace::new(&c, FeatureConfig::PcOnly).item_similarity(0, 1);
        let lopsided = FormPageSpace::new(&c, FeatureConfig::Combined { c1: 3.0, c2: 1.0 })
            .item_similarity(0, 1);
        assert!(((3.0 * pc + fc) / 4.0 - lopsided).abs() < 1e-12);
    }

    #[test]
    fn centroid_similarity_matches_item_for_singletons() {
        let c = corpus();
        let space = FormPageSpace::new(&c, FeatureConfig::combined());
        let ca = space.centroid(&[0]);
        let cb = space.centroid(&[2]);
        assert!((space.centroid_similarity(&ca, &cb) - space.item_similarity(0, 2)).abs() < 1e-12);
    }

    #[test]
    fn similarity_in_unit_interval() {
        let c = corpus();
        for config in [
            FeatureConfig::FcOnly,
            FeatureConfig::PcOnly,
            FeatureConfig::combined(),
            FeatureConfig::WithAnchors {
                c1: 1.0,
                c2: 1.0,
                c3: 1.0,
            },
        ] {
            let space = FormPageSpace::new(&c, config);
            for a in 0..3 {
                for b in 0..3 {
                    let s = space.item_similarity(a, b);
                    assert!((0.0..=1.0).contains(&s), "{config:?}: sim({a},{b}) = {s}");
                }
            }
        }
    }
}
