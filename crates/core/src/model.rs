//! The form-page model (§2.1): `FP(PC, FC)` — and, for CAFC-CH, the
//! extended `FP(Backlink, PC, FC)` plus the anchor-text extension of §6.
//!
//! Each form page is represented in two vector spaces built from located
//! text: **FC** (everything between the FORM tags, with `<option>` content
//! down-weighted) and **PC** (everything on the page, with `<title>` text
//! up-weighted). Term weights follow Equation 1,
//! `w_i = LOC_i · TF_i · log(N / n_i)`, with document frequencies computed
//! per feature space.

use crate::ingest::{DegradedReason, IngestError, IngestLimits, IngestReport, PageOutcome};
use cafc_exec::{par_chunks_obs, par_map_slice, ExecPolicy};
use cafc_html::{located_text, parse, strip_control_chars, Document, ParseStats, TextLocation};
use cafc_obs::Obs;
use cafc_text::{Analyzer, TermDict, TermId};
use cafc_vsm::{weigh, CountsBuilder, DocumentFrequencies, IdfScheme, SparseVector, TfScheme};
use cafc_webgraph::{PageId, WebGraph};

/// Pages per work unit when vectorization fans out. Fixed (never derived
/// from the thread count) so chunk boundaries — and therefore term-id
/// assignment order — are identical under every [`ExecPolicy`].
/// Checkpoint batches (resume.rs) are rounded up to a multiple of this so
/// a resumed run reproduces the same chunk boundaries.
pub(crate) const PAGE_CHUNK: usize = 16;

/// The `LOC_i` factor of Equation 1: a multiplier per text location.
///
/// The paper's §4.4 configuration: "for form contents, lower weights are
/// given to terms inside option tags; and for page contents, weights given
/// to terms inside the title tag are higher than for terms in the body."
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocationWeights {
    /// `<title>` text (PC space).
    pub title: f64,
    /// Heading text (PC space).
    pub heading: f64,
    /// Anchor text of links on the page (PC space).
    pub anchor: f64,
    /// Plain body text (PC space).
    pub body: f64,
    /// Free text between the form tags (FC space).
    pub form_text: f64,
    /// `<option>` contents (FC space) — database *contents*, down-weighted.
    pub form_option: f64,
    /// Visible field values: button labels, prefills (FC space).
    pub form_value: f64,
}

impl LocationWeights {
    /// The paper's differentiated weighting.
    pub fn differentiated() -> Self {
        LocationWeights {
            title: 2.0,
            heading: 1.5,
            anchor: 1.0,
            body: 1.0,
            form_text: 1.0,
            form_option: 0.5,
            form_value: 1.0,
        }
    }

    /// The §4.4 ablation: every location weighs 1.0 (plain TF-IDF).
    pub fn uniform() -> Self {
        LocationWeights {
            title: 1.0,
            heading: 1.0,
            anchor: 1.0,
            body: 1.0,
            form_text: 1.0,
            form_option: 1.0,
            form_value: 1.0,
        }
    }

    /// The multiplier for a location.
    pub fn weight(&self, loc: TextLocation) -> f64 {
        match loc {
            TextLocation::Title => self.title,
            TextLocation::Heading => self.heading,
            TextLocation::Anchor => self.anchor,
            TextLocation::Body => self.body,
            TextLocation::FormText => self.form_text,
            TextLocation::FormOption => self.form_option,
            TextLocation::FormValue => self.form_value,
        }
    }
}

impl Default for LocationWeights {
    fn default() -> Self {
        LocationWeights::differentiated()
    }
}

/// Model construction options.
///
/// Construct with [`ModelOptions::default`] (the paper's configuration)
/// plus the chainable `with_*` setters; the struct is `#[non_exhaustive]`
/// so future knobs are not breaking changes.
#[derive(Debug, Clone, Copy, Default)]
#[non_exhaustive]
pub struct ModelOptions {
    /// Location weighting (Equation 1's `LOC_i`).
    pub weights: LocationWeights,
    /// Text analysis pipeline (tokenize/stopword/stem).
    pub analyzer: Analyzer,
    /// Term-frequency scheme (Equation 1 uses raw TF).
    pub tf: TfScheme,
    /// IDF scheme (Equation 1 uses plain `log(N/n_i)`).
    pub idf: IdfScheme,
}

impl ModelOptions {
    /// The paper's configuration (same as `Default`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the location weighting.
    pub fn with_weights(mut self, weights: LocationWeights) -> Self {
        self.weights = weights;
        self
    }

    /// Set the text analysis pipeline.
    pub fn with_analyzer(mut self, analyzer: Analyzer) -> Self {
        self.analyzer = analyzer;
        self
    }

    /// Set the term-frequency scheme.
    pub fn with_tf(mut self, tf: TfScheme) -> Self {
        self.tf = tf;
        self
    }

    /// Set the IDF scheme.
    pub fn with_idf(mut self, idf: IdfScheme) -> Self {
        self.idf = idf;
        self
    }
}

/// The vectorized corpus: per-page PC/FC (and optionally anchor) vectors
/// sharing one term dictionary.
#[derive(Debug, Clone)]
pub struct FormPageCorpus {
    /// Shared term dictionary.
    pub dict: TermDict,
    /// Page-content vectors, one per page.
    pub pc: Vec<SparseVector>,
    /// Raw location-weighted page-content term frequencies (Equation 1's
    /// `LOC_i · TF_i`, before IDF), one per page. The TF-IDF weighting in
    /// `pc` drops terms whose idf is 0, so BM25 indexing — which needs the
    /// raw frequencies and its own collection statistics — reads this
    /// space instead.
    pub pc_tf: Vec<SparseVector>,
    /// Form-content vectors, one per page.
    pub fc: Vec<SparseVector>,
    /// In-link anchor-text vectors (empty vectors unless built from a graph
    /// with [`FormPageCorpus::from_graph_with_anchors`]).
    pub anchor: Vec<SparseVector>,
    /// Page-content collection statistics the `pc` weights were computed
    /// from. The streaming layer (`StreamCorpus`) keeps weighing late
    /// arrivals against these, updated per arrival, so streamed vectors
    /// live on the same scale as the batch-built ones.
    pub pc_df: DocumentFrequencies,
    /// Form-content collection statistics behind `fc`, kept for the same
    /// reason as `pc_df`.
    pub fc_df: DocumentFrequencies,
}

impl FormPageCorpus {
    /// Number of pages.
    pub fn len(&self) -> usize {
        self.pc.len()
    }

    /// True when the corpus has no pages.
    pub fn is_empty(&self) -> bool {
        self.pc.is_empty()
    }

    /// Build the model from raw HTML documents.
    pub fn from_html<'a, I>(pages: I, opts: &ModelOptions) -> FormPageCorpus
    where
        I: IntoIterator<Item = &'a str>,
    {
        Self::from_html_exec(pages, opts, ExecPolicy::Serial)
    }

    /// Build the model from raw HTML documents under an explicit execution
    /// policy.
    ///
    /// Bit-identical to [`FormPageCorpus::from_html`] (which delegates here
    /// with [`ExecPolicy::Serial`]) for every policy: pages are vectorized
    /// in fixed-size chunks against chunk-local term dictionaries, and the
    /// chunks are re-based onto the shared dictionary in chunk order, which
    /// reproduces the serial first-occurrence id assignment exactly.
    pub fn from_html_exec<'a, I>(
        pages: I,
        opts: &ModelOptions,
        policy: ExecPolicy,
    ) -> FormPageCorpus
    where
        I: IntoIterator<Item = &'a str>,
    {
        Self::from_html_obs(pages, opts, policy, &Obs::disabled())
    }

    /// [`FormPageCorpus::from_html_exec`] with instrumentation (which
    /// delegates here with [`Obs::disabled`]): spans `corpus.vectorize` and
    /// `corpus.tfidf`, per-chunk `corpus.vectorize.*` metrics, and gauges
    /// `corpus.pages` / `corpus.terms`.
    pub fn from_html_obs<'a, I>(
        pages: I,
        opts: &ModelOptions,
        policy: ExecPolicy,
        obs: &Obs,
    ) -> FormPageCorpus
    where
        I: IntoIterator<Item = &'a str>,
    {
        let pages: Vec<&str> = pages.into_iter().collect();
        let vectorize_span = obs.span("corpus.vectorize");
        let chunks = par_chunks_obs(
            policy,
            pages.len(),
            PAGE_CHUNK,
            obs,
            "corpus.vectorize",
            |range| {
                let mut local = LocalVectors::default();
                for &html in &pages[range] {
                    let (pc, fc) = vectorize_page(html, opts, &mut local.dict, &mut local.term_buf);
                    local.pc.push(pc);
                    local.fc.push(fc);
                }
                local
            },
        );
        let (dict, pc_counts, fc_counts) = merge_local_vectors(chunks);
        drop(vectorize_span);
        Self::finish(dict, pc_counts, fc_counts, None, opts, policy, obs)
    }

    /// Build the model through the hardened ingestion layer (DESIGN.md §8):
    /// every page gets a [`PageOutcome`], structural limits are enforced,
    /// and quarantined pages are excluded from the corpus instead of
    /// contributing degenerate vectors.
    ///
    /// `report.kept[i]` gives the input index of corpus page `i`, and
    /// `report.is_accounted()` always holds on return.
    pub fn from_html_ingest<'a, I>(
        pages: I,
        opts: &ModelOptions,
        limits: &IngestLimits,
    ) -> (FormPageCorpus, IngestReport)
    where
        I: IntoIterator<Item = &'a str>,
    {
        Self::from_html_ingest_exec(pages, opts, limits, ExecPolicy::Serial)
    }

    /// Hardened ingestion under an explicit execution policy.
    ///
    /// Bit-identical to [`FormPageCorpus::from_html_ingest`] (which
    /// delegates here with [`ExecPolicy::Serial`]) for every policy: page
    /// outcomes are produced per fixed-size chunk and concatenated in chunk
    /// order, so the outcome sequence, the quarantine order and the
    /// `kept` mapping never depend on the thread count — and
    /// `report.is_accounted()` always holds on return.
    pub fn from_html_ingest_exec<'a, I>(
        pages: I,
        opts: &ModelOptions,
        limits: &IngestLimits,
        policy: ExecPolicy,
    ) -> (FormPageCorpus, IngestReport)
    where
        I: IntoIterator<Item = &'a str>,
    {
        Self::from_html_ingest_obs(pages, opts, limits, policy, &Obs::disabled())
    }

    /// [`FormPageCorpus::from_html_ingest_exec`] with instrumentation
    /// (which delegates here with [`Obs::disabled`]): an `ingest` span,
    /// per-chunk `ingest.*` metrics, per-page `ingest.sanitize_us` /
    /// `ingest.parse_us` / `ingest.analyze_us` histograms (recorded by
    /// worker threads — safe, counters and histograms aggregate
    /// commutatively), outcome counters `ingest.pages_total` /
    /// `ingest.pages_ok` / `ingest.pages_degraded` /
    /// `ingest.pages_quarantined`, and one `ingest.degraded.<label>`
    /// counter per [`DegradedReason`] observed.
    pub fn from_html_ingest_obs<'a, I>(
        pages: I,
        opts: &ModelOptions,
        limits: &IngestLimits,
        policy: ExecPolicy,
        obs: &Obs,
    ) -> (FormPageCorpus, IngestReport)
    where
        I: IntoIterator<Item = &'a str>,
    {
        let pages: Vec<&str> = pages.into_iter().collect();
        let ingest_span = obs.span("ingest");
        let mut merge = IngestMerge::new(limits);
        ingest_shard(&pages, opts, limits, policy, obs, &mut merge);
        drop(ingest_span);
        emit_ingest_metrics(&merge.report, obs);
        let corpus = Self::finish(
            merge.dict,
            merge.pc_counts,
            merge.fc_counts,
            None,
            opts,
            policy,
            obs,
        );
        (corpus, merge.report)
    }

    /// Build the model through hardened ingestion from pre-cut shards of
    /// pages, merged in shard order.
    ///
    /// This is the 10^5–10^6-page entry point (ROADMAP item 3): shards are
    /// consumed one at a time from the iterator, so a generator-backed
    /// caller (`cafc bench`, the sharded synthetic corpus) never holds more
    /// than one shard of raw HTML in memory while the accumulated state
    /// grows only with the *kept* corpus — which
    /// [`IngestLimits::max_corpus_bytes`] bounds.
    ///
    /// **Shard-merge invariance:** per-page outcomes are pure functions of
    /// the page, and the merge re-bases chunk-local term ids onto the
    /// shared dictionary in input order — reproducing the global
    /// first-occurrence term-id order of a serial single-batch pass. The
    /// corpus and report are therefore bit-identical to
    /// [`FormPageCorpus::from_html_ingest`] over the concatenated pages,
    /// for **any** partition of the input into shards and any
    /// [`IngestLimits::shard_pages`] value (pinned by `tests/scale.rs` and
    /// the cafc-check properties).
    pub fn from_shards<I>(
        shards: I,
        opts: &ModelOptions,
        limits: &IngestLimits,
    ) -> (FormPageCorpus, IngestReport)
    where
        I: IntoIterator<Item = Vec<String>>,
    {
        Self::from_shards_exec(shards, opts, limits, ExecPolicy::Serial)
    }

    /// [`FormPageCorpus::from_shards`] under an explicit execution policy;
    /// bit-identical for every policy.
    pub fn from_shards_exec<I>(
        shards: I,
        opts: &ModelOptions,
        limits: &IngestLimits,
        policy: ExecPolicy,
    ) -> (FormPageCorpus, IngestReport)
    where
        I: IntoIterator<Item = Vec<String>>,
    {
        Self::from_shards_obs(shards, opts, limits, policy, &Obs::disabled())
    }

    /// [`FormPageCorpus::from_shards_exec`] with instrumentation — the
    /// `ingest` span and `ingest.*` metrics of
    /// [`FormPageCorpus::from_html_ingest_obs`].
    pub fn from_shards_obs<I>(
        shards: I,
        opts: &ModelOptions,
        limits: &IngestLimits,
        policy: ExecPolicy,
        obs: &Obs,
    ) -> (FormPageCorpus, IngestReport)
    where
        I: IntoIterator<Item = Vec<String>>,
    {
        let ingest_span = obs.span("ingest");
        let mut merge = IngestMerge::new(limits);
        for shard in shards {
            let refs: Vec<&str> = shard.iter().map(String::as_str).collect();
            ingest_shard(&refs, opts, limits, policy, obs, &mut merge);
        }
        drop(ingest_span);
        emit_ingest_metrics(&merge.report, obs);
        let corpus = Self::finish(
            merge.dict,
            merge.pc_counts,
            merge.fc_counts,
            None,
            opts,
            policy,
            obs,
        );
        (corpus, merge.report)
    }

    /// Build the model for `pages` stored in `graph`, without anchor text.
    pub fn from_graph(graph: &WebGraph, pages: &[PageId], opts: &ModelOptions) -> FormPageCorpus {
        Self::from_graph_impl(
            graph,
            pages,
            opts,
            false,
            ExecPolicy::Serial,
            &Obs::disabled(),
        )
    }

    /// Graph construction under an explicit execution policy; bit-identical
    /// to [`FormPageCorpus::from_graph`] for every policy.
    pub fn from_graph_exec(
        graph: &WebGraph,
        pages: &[PageId],
        opts: &ModelOptions,
        policy: ExecPolicy,
    ) -> FormPageCorpus {
        Self::from_graph_impl(graph, pages, opts, false, policy, &Obs::disabled())
    }

    /// [`FormPageCorpus::from_graph_exec`] with instrumentation — the
    /// `corpus.*` spans and metrics of [`FormPageCorpus::from_html_obs`].
    pub fn from_graph_obs(
        graph: &WebGraph,
        pages: &[PageId],
        opts: &ModelOptions,
        policy: ExecPolicy,
        obs: &Obs,
    ) -> FormPageCorpus {
        Self::from_graph_impl(graph, pages, opts, false, policy, obs)
    }

    /// Build the model plus the §6 anchor-text extension: for each target
    /// page, the text of every in-link anchor pointing at it (from the hub
    /// pages' HTML) forms a third feature space.
    pub fn from_graph_with_anchors(
        graph: &WebGraph,
        pages: &[PageId],
        opts: &ModelOptions,
    ) -> FormPageCorpus {
        Self::from_graph_impl(
            graph,
            pages,
            opts,
            true,
            ExecPolicy::Serial,
            &Obs::disabled(),
        )
    }

    /// Graph-plus-anchors construction under an explicit execution policy;
    /// bit-identical to [`FormPageCorpus::from_graph_with_anchors`] for
    /// every policy.
    pub fn from_graph_with_anchors_exec(
        graph: &WebGraph,
        pages: &[PageId],
        opts: &ModelOptions,
        policy: ExecPolicy,
    ) -> FormPageCorpus {
        Self::from_graph_impl(graph, pages, opts, true, policy, &Obs::disabled())
    }

    /// [`FormPageCorpus::from_graph_with_anchors_exec`] with
    /// instrumentation — additionally wraps the in-link anchor pass in a
    /// `corpus.anchors` span.
    pub fn from_graph_with_anchors_obs(
        graph: &WebGraph,
        pages: &[PageId],
        opts: &ModelOptions,
        policy: ExecPolicy,
        obs: &Obs,
    ) -> FormPageCorpus {
        Self::from_graph_impl(graph, pages, opts, true, policy, obs)
    }

    fn from_graph_impl(
        graph: &WebGraph,
        pages: &[PageId],
        opts: &ModelOptions,
        with_anchors: bool,
        policy: ExecPolicy,
        obs: &Obs,
    ) -> FormPageCorpus {
        let vectorize_span = obs.span("corpus.vectorize");
        let chunks = par_chunks_obs(
            policy,
            pages.len(),
            PAGE_CHUNK,
            obs,
            "corpus.vectorize",
            |range| {
                let mut local = LocalVectors::default();
                for &page in &pages[range] {
                    let html = graph.html(page).unwrap_or("");
                    let (pc, fc) = vectorize_page(html, opts, &mut local.dict, &mut local.term_buf);
                    local.pc.push(pc);
                    local.fc.push(fc);
                }
                local
            },
        );
        let (mut dict, pc_counts, fc_counts) = merge_local_vectors(chunks);
        drop(vectorize_span);

        // The anchor pass interns into the merged dictionary on the calling
        // thread, after all page terms — exactly the serial interleaving.
        let _anchor_span = with_anchors.then(|| obs.span("corpus.anchors"));
        let anchor_counts = with_anchors.then(|| {
            let mut term_buf: Vec<TermId> = Vec::new();
            let mut counts: Vec<CountsBuilder> =
                (0..pages.len()).map(|_| CountsBuilder::new()).collect();
            // Parse each distinct linking page once; map its anchors to
            // targets by resolved URL.
            let mut linkers: Vec<PageId> = pages
                .iter()
                .flat_map(|&p| graph.in_links(p).iter().copied())
                .collect();
            linkers.sort_unstable();
            linkers.dedup();
            let target_index: std::collections::HashMap<&cafc_webgraph::Url, usize> = pages
                .iter()
                .enumerate()
                .map(|(i, &p)| (graph.url(p), i))
                .collect();
            for linker in linkers {
                let Some(html) = graph.html(linker) else {
                    continue;
                };
                let doc = parse(html);
                let base = graph.url(linker);
                for node in doc.elements_named("a") {
                    let Some(href) = doc.attr(node, "href") else {
                        continue;
                    };
                    let Some(url) = base.resolve(href) else {
                        continue;
                    };
                    if let Some(&target) = target_index.get(&url) {
                        let text = doc.text_content(node);
                        term_buf.clear();
                        opts.analyzer.analyze_into(&text, &mut dict, &mut term_buf);
                        counts[target].add_all(term_buf.iter().copied(), 1.0);
                    }
                }
            }
            counts
        });
        drop(_anchor_span);

        Self::finish(dict, pc_counts, fc_counts, anchor_counts, opts, policy, obs)
    }

    /// Apply per-space IDF (Equation 1's `log(N/n_i)`) and freeze vectors.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn finish(
        dict: TermDict,
        pc_counts: Vec<CountsBuilder>,
        fc_counts: Vec<CountsBuilder>,
        anchor_counts: Option<Vec<CountsBuilder>>,
        opts: &ModelOptions,
        policy: ExecPolicy,
        obs: &Obs,
    ) -> FormPageCorpus {
        let _tfidf_span = obs.span("corpus.tfidf");
        let n = pc_counts.len();
        let mut pc_df = DocumentFrequencies::new();
        let mut fc_df = DocumentFrequencies::new();
        for c in &pc_counts {
            pc_df.add_document(c.term_ids());
        }
        for c in &fc_counts {
            fc_df.add_document(c.term_ids());
        }
        // Each page's Equation-1 weighting is one closure -> the same floats
        // under every policy.
        let pc = par_map_slice(policy, &pc_counts, |_, c| {
            weigh(c, &pc_df, opts.tf, opts.idf)
        });
        let pc_tf = par_map_slice(policy, &pc_counts, |_, c| c.tf());
        let fc = par_map_slice(policy, &fc_counts, |_, c| {
            weigh(c, &fc_df, opts.tf, opts.idf)
        });
        let anchor = match anchor_counts {
            Some(counts) => {
                let mut adf = DocumentFrequencies::new();
                for c in &counts {
                    adf.add_document(c.term_ids());
                }
                par_map_slice(policy, &counts, |_, c| weigh(c, &adf, opts.tf, opts.idf))
            }
            None => vec![SparseVector::empty(); n],
        };
        obs.gauge("corpus.pages", n as f64);
        obs.gauge("corpus.terms", dict.len() as f64);
        FormPageCorpus {
            dict,
            pc,
            pc_tf,
            fc,
            anchor,
            pc_df,
            fc_df,
        }
    }
}

/// One chunk's worth of page vectors, keyed by a chunk-local dictionary.
#[derive(Default)]
struct LocalVectors {
    dict: TermDict,
    term_buf: Vec<TermId>,
    pc: Vec<CountsBuilder>,
    fc: Vec<CountsBuilder>,
}

/// Re-base chunk-local term ids onto one shared dictionary, in chunk order.
///
/// Interning each chunk's terms in local-id order (= first-occurrence order
/// within the chunk) reproduces the global first-occurrence order a serial
/// pass would produce, so the merged dictionary and every remapped vector
/// are identical to the single-dictionary construction.
fn merge_local_vectors(
    chunks: Vec<LocalVectors>,
) -> (TermDict, Vec<CountsBuilder>, Vec<CountsBuilder>) {
    let mut dict = TermDict::new();
    let mut pc_counts = Vec::new();
    let mut fc_counts = Vec::new();
    for chunk in chunks {
        let map: Vec<TermId> = chunk.dict.iter().map(|(_, t)| dict.intern(t)).collect();
        pc_counts.extend(chunk.pc.into_iter().map(|c| c.remap(|id| map[id.index()])));
        fc_counts.extend(chunk.fc.into_iter().map(|c| c.remap(|id| map[id.index()])));
    }
    (dict, pc_counts, fc_counts)
}

/// Estimated bytes per kept vector entry: one `(TermId, f64)` pair, the
/// same figure `SparseVector::heap_bytes` reports. A function of the
/// distinct-term count alone, so budget accounting is deterministic.
pub(crate) const VECTOR_ENTRY_BYTES: usize = 16;

/// Accumulates per-chunk ingestion output into the shared dictionary,
/// counts and report, enforcing [`IngestLimits::max_corpus_bytes`] at the
/// merge — which runs serially in input order under every policy, so
/// budget decisions are execution- and shard-size-invariant.
///
/// Shared by the single-batch path ([`FormPageCorpus::from_html_ingest`]),
/// the sharded path ([`FormPageCorpus::from_shards`]) and the resumable
/// path (resume.rs), so they can never diverge on accounting.
pub(crate) struct IngestMerge {
    pub(crate) dict: TermDict,
    pub(crate) pc_counts: Vec<CountsBuilder>,
    pub(crate) fc_counts: Vec<CountsBuilder>,
    pub(crate) report: IngestReport,
    /// Estimated bytes of kept vector entries so far.
    pub(crate) used_bytes: usize,
    max_corpus_bytes: usize,
}

impl IngestMerge {
    pub(crate) fn new(limits: &IngestLimits) -> IngestMerge {
        IngestMerge {
            dict: TermDict::new(),
            pc_counts: Vec::new(),
            fc_counts: Vec::new(),
            report: IngestReport::default(),
            used_bytes: 0,
            max_corpus_bytes: limits.max_corpus_bytes,
        }
    }

    /// Rebuild from previously accumulated state (the resume path):
    /// `used_bytes` is recomputed from the kept counts, so a resumed run
    /// makes the same budget decisions as an uninterrupted one.
    pub(crate) fn from_parts(
        dict: TermDict,
        pc_counts: Vec<CountsBuilder>,
        fc_counts: Vec<CountsBuilder>,
        report: IngestReport,
        limits: &IngestLimits,
    ) -> IngestMerge {
        let used_bytes = pc_counts
            .iter()
            .zip(&fc_counts)
            .map(|(pc, fc)| (pc.distinct_terms() + fc.distinct_terms()) * VECTOR_ENTRY_BYTES)
            .sum();
        IngestMerge {
            dict,
            pc_counts,
            fc_counts,
            report,
            used_bytes,
            max_corpus_bytes: limits.max_corpus_bytes,
        }
    }

    /// Merge one chunk's local dictionary and outcomes, in input order.
    ///
    /// A kept page whose estimated vector footprint would push
    /// `used_bytes` past the budget is quarantined here with
    /// [`IngestError::BudgetExhausted`] (its terms stay in the dictionary
    /// — interning already happened chunk-wide, and dictionary order must
    /// not depend on budget decisions).
    pub(crate) fn absorb(
        &mut self,
        local_dict: TermDict,
        outcomes: Vec<(PageOutcome, Option<(CountsBuilder, CountsBuilder)>)>,
    ) {
        let map: Vec<TermId> = local_dict
            .iter()
            .map(|(_, t)| self.dict.intern(t))
            .collect();
        for (outcome, counts) in outcomes {
            let index = self.report.outcomes.len();
            match counts {
                Some((pc, fc)) => {
                    let needed = (pc.distinct_terms() + fc.distinct_terms()) * VECTOR_ENTRY_BYTES;
                    if self.used_bytes.saturating_add(needed) > self.max_corpus_bytes {
                        self.report.outcomes.push(PageOutcome::Quarantined {
                            error: IngestError::BudgetExhausted {
                                needed,
                                budget: self.max_corpus_bytes,
                            },
                        });
                    } else {
                        self.used_bytes += needed;
                        self.report.kept.push(index);
                        self.pc_counts.push(pc.remap(|id| map[id.index()]));
                        self.fc_counts.push(fc.remap(|id| map[id.index()]));
                        self.report.outcomes.push(outcome);
                    }
                }
                None => self.report.outcomes.push(outcome),
            }
        }
    }
}

/// Ingest one contiguous run of pages — chunked by
/// [`IngestLimits::shard_pages`] on the exec layer — into `merge`.
pub(crate) fn ingest_shard(
    pages: &[&str],
    opts: &ModelOptions,
    limits: &IngestLimits,
    policy: ExecPolicy,
    obs: &Obs,
    merge: &mut IngestMerge,
) {
    let chunk_len = limits.shard_pages.max(1);
    let chunks = par_chunks_obs(policy, pages.len(), chunk_len, obs, "ingest", |range| {
        let mut dict = TermDict::new();
        let mut term_buf: Vec<TermId> = Vec::new();
        let outcomes: Vec<_> = pages[range]
            .iter()
            .map(|&html| ingest_page(html, opts, limits, &mut dict, &mut term_buf, obs))
            .collect();
        (dict, outcomes)
    });
    for (local_dict, outcomes) in chunks {
        merge.absorb(local_dict, outcomes);
    }
}

/// Emit the standard `ingest.*` outcome counters for a finished report.
pub(crate) fn emit_ingest_metrics(report: &IngestReport, obs: &Obs) {
    if obs.is_enabled() {
        obs.add("ingest.pages_total", report.total() as u64);
        obs.add("ingest.pages_ok", report.ok() as u64);
        obs.add("ingest.pages_degraded", report.degraded() as u64);
        obs.add("ingest.pages_quarantined", report.quarantined() as u64);
        for (reason, count) in report.reason_counts() {
            obs.add(&format!("ingest.degraded.{}", reason.label()), count as u64);
        }
    }
}

/// Vectorize one page into PC/FC count accumulators against `dict`.
fn vectorize_page(
    html: &str,
    opts: &ModelOptions,
    dict: &mut TermDict,
    term_buf: &mut Vec<TermId>,
) -> (CountsBuilder, CountsBuilder) {
    let doc = parse(html);
    let mut pc = CountsBuilder::new();
    let mut fc = CountsBuilder::new();
    for lt in located_text(&doc) {
        term_buf.clear();
        opts.analyzer.analyze_into(&lt.text, dict, term_buf);
        let w = opts.weights.weight(lt.location);
        if lt.location.is_form() {
            // Form text belongs to both spaces: FC by definition, and PC
            // covers "all words within the HTML tags".
            fc.add_all(term_buf.iter().copied(), w);
            pc.add_all(term_buf.iter().copied(), w);
        } else {
            pc.add_all(term_buf.iter().copied(), w);
        }
    }
    (pc, fc)
}

/// Run one page through the hardened ingestion checks; `Some` counts mean
/// the page is kept.
///
/// Phase timings (`ingest.sanitize_us` / `ingest.parse_us` /
/// `ingest.analyze_us`) are recorded per page into `obs` histograms —
/// order-independent aggregates, so recording from parallel ingestion
/// workers preserves snapshot determinism (under a logical clock every
/// duration is 0).
pub(crate) fn ingest_page(
    html: &str,
    opts: &ModelOptions,
    limits: &IngestLimits,
    dict: &mut TermDict,
    term_buf: &mut Vec<TermId>,
    obs: &Obs,
) -> (PageOutcome, Option<(CountsBuilder, CountsBuilder)>) {
    let mut reasons: Vec<DegradedReason> = Vec::new();

    if html.len() > limits.hard_max_bytes {
        let outcome = PageOutcome::Quarantined {
            error: IngestError::TooLarge {
                bytes: html.len(),
                limit: limits.hard_max_bytes,
            },
        };
        return (outcome, None);
    }
    let sanitize_t0 = obs.start_timer();
    let html = if html.len() > limits.soft_max_bytes {
        reasons.push(DegradedReason::InputTruncated);
        // Truncate on a char boundary; mid-tag cuts are exactly what the
        // tokenizer is built to absorb.
        let mut cut = limits.soft_max_bytes;
        while cut > 0 && !html.is_char_boundary(cut) {
            cut -= 1;
        }
        &html[..cut]
    } else {
        html
    };
    let (html, stripped) = strip_control_chars(html);
    if stripped {
        reasons.push(DegradedReason::ControlCharsStripped);
    }
    obs.observe_since("ingest.sanitize_us", sanitize_t0);

    let parse_t0 = obs.start_timer();
    let (doc, stats) = Document::parse_with_stats(&html);
    obs.observe_since("ingest.parse_us", parse_t0);

    ingest_document(&doc, stats, reasons, opts, limits, dict, term_buf, obs)
}

/// The post-parse half of [`ingest_page`]: budgeted analysis plus the
/// outcome taxonomy, over a document however it was parsed. The streaming
/// layer enters here with a [`StreamingParser`](cafc_html::StreamingParser)
/// output; `ingest_page` enters with a whole-input parse. `reasons` carries
/// whatever degradations the caller's sanitize/parse phases already found.
#[allow(clippy::too_many_arguments)]
pub(crate) fn ingest_document(
    doc: &Document,
    stats: ParseStats,
    mut reasons: Vec<DegradedReason>,
    opts: &ModelOptions,
    limits: &IngestLimits,
    dict: &mut TermDict,
    term_buf: &mut Vec<TermId>,
    obs: &Obs,
) -> (PageOutcome, Option<(CountsBuilder, CountsBuilder)>) {
    if stats.depth_capped {
        reasons.push(DegradedReason::DepthCapped);
    }
    if stats.nodes_capped {
        reasons.push(DegradedReason::InputTruncated);
    }

    let analyze_t0 = obs.start_timer();
    let mut pc = CountsBuilder::new();
    let mut fc = CountsBuilder::new();
    let mut terms_used = 0usize;
    let mut budget_hit = false;
    for lt in located_text(doc) {
        let budget = limits.max_terms.saturating_sub(terms_used);
        if budget == 0 {
            budget_hit = true;
            break;
        }
        term_buf.clear();
        budget_hit |= opts
            .analyzer
            .analyze_into_budget(&lt.text, dict, term_buf, budget);
        terms_used += term_buf.len();
        let w = opts.weights.weight(lt.location);
        if lt.location.is_form() {
            fc.add_all(term_buf.iter().copied(), w);
            pc.add_all(term_buf.iter().copied(), w);
        } else {
            pc.add_all(term_buf.iter().copied(), w);
        }
    }
    if budget_hit {
        reasons.push(DegradedReason::TermBudgetExceeded);
    }
    obs.observe_since("ingest.analyze_us", analyze_t0);

    if pc.is_empty() {
        let outcome = PageOutcome::Quarantined {
            error: IngestError::EmptyDocument,
        };
        return (outcome, None);
    }
    if doc.title().is_none() {
        reasons.push(DegradedReason::MissingTitle);
    }
    if fc.is_empty() {
        reasons.push(DegradedReason::NoFormContent);
    }

    let outcome = if reasons.is_empty() {
        PageOutcome::Ok
    } else {
        reasons.sort_unstable();
        reasons.dedup();
        PageOutcome::Degraded { reasons }
    };
    (outcome, Some((pc, fc)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ingest::{DegradedReason, IngestError, IngestLimits, PageOutcome};

    fn opts() -> ModelOptions {
        ModelOptions::default()
    }

    #[test]
    fn builds_separate_spaces() {
        let pages = [
            "<title>Cheap Flights</title><p>airfare deals</p><form>Departure <input name=d></form>",
            "<title>Job Search</title><p>careers employment</p><form>Keywords <input name=k></form>",
        ];
        let corpus = FormPageCorpus::from_html(pages.iter().copied(), &opts());
        assert_eq!(corpus.len(), 2);
        // FC vectors contain only form vocabulary.
        let departure = corpus
            .dict
            .get("departur")
            .expect("stemmed 'departure' interned");
        assert!(corpus.fc[0].get(departure) > 0.0);
        assert_eq!(corpus.fc[1].get(departure), 0.0);
        // PC vectors contain body vocabulary.
        let airfare = corpus
            .dict
            .get("airfar")
            .expect("stemmed 'airfare' interned");
        assert!(corpus.pc[0].get(airfare) > 0.0);
    }

    #[test]
    fn form_text_included_in_pc() {
        let pages = [
            "<form>departure city <input name=a></form>",
            "<p>something else entirely different</p><form><input name=b></form>",
        ];
        let corpus = FormPageCorpus::from_html(pages.iter().copied(), &opts());
        let departure = corpus.dict.get("departur").expect("interned");
        assert!(
            corpus.pc[0].get(departure) > 0.0,
            "PC must cover form text too"
        );
    }

    #[test]
    fn raw_tf_keeps_what_tfidf_drops() {
        // "privacy" on every page -> idf 0 -> absent from pc, but its raw
        // location-weighted frequency survives in pc_tf for BM25.
        let pages = [
            "<p>privacy flights flights</p><form><input name=a></form>",
            "<p>privacy jobs</p><form><input name=b></form>",
        ];
        let corpus = FormPageCorpus::from_html(pages.iter().copied(), &opts());
        assert_eq!(corpus.pc_tf.len(), corpus.len());
        let privacy = corpus.dict.get("privaci").expect("interned");
        assert_eq!(corpus.pc[0].get(privacy), 0.0, "idf-0 term dropped from pc");
        assert_eq!(corpus.pc_tf[0].get(privacy), 1.0, "raw tf retained");
        let flights = corpus.dict.get("flight").expect("interned");
        assert_eq!(corpus.pc_tf[0].get(flights), 2.0, "two body occurrences");
    }

    #[test]
    fn ubiquitous_terms_vanish() {
        // "privacy" on every page -> idf 0 -> absent from all vectors.
        let pages = [
            "<p>privacy flights</p><form><input name=a></form>",
            "<p>privacy jobs</p><form><input name=b></form>",
        ];
        let corpus = FormPageCorpus::from_html(pages.iter().copied(), &opts());
        let privacy = corpus.dict.get("privaci").expect("interned");
        assert_eq!(corpus.pc[0].get(privacy), 0.0);
        assert_eq!(corpus.pc[1].get(privacy), 0.0);
    }

    #[test]
    fn title_upweighted() {
        // Same word once in title (page 0) vs once in body (page 1); a
        // third page without it makes idf positive.
        let pages = [
            "<title>flights</title><p>x</p>",
            "<p>flights y</p>",
            "<p>unrelated z</p>",
        ];
        let corpus = FormPageCorpus::from_html(pages.iter().copied(), &opts());
        let flights = corpus.dict.get("flight").expect("interned");
        assert!(
            corpus.pc[0].get(flights) > corpus.pc[1].get(flights),
            "title occurrence must outweigh body occurrence"
        );
    }

    #[test]
    fn uniform_weights_remove_location_effect() {
        let pages = ["<title>flights</title>", "<p>flights</p>", "<p>other</p>"];
        let o = opts().with_weights(LocationWeights::uniform());
        let corpus = FormPageCorpus::from_html(pages.iter().copied(), &o);
        let flights = corpus.dict.get("flight").expect("interned");
        assert!((corpus.pc[0].get(flights) - corpus.pc[1].get(flights)).abs() < 1e-12);
    }

    #[test]
    fn options_downweighted_in_fc() {
        let pages = [
            "<form><select><option>texas</option></select> texas <input name=a></form>",
            "<form><input name=b></form>",
        ];
        let corpus = FormPageCorpus::from_html(pages.iter().copied(), &opts());
        let texas = corpus.dict.get("texa").expect("interned");
        // One occurrence at weight 0.5 (option) + one at 1.0 (form text)
        // = 1.5x idf; with uniform weights it would be 2x idf.
        let differentiated = corpus.fc[0].get(texas);
        let o = opts().with_weights(LocationWeights::uniform());
        let uniform_corpus = FormPageCorpus::from_html(pages.iter().copied(), &o);
        let uniform = uniform_corpus.fc[0].get(texas);
        assert!(differentiated < uniform);
    }

    #[test]
    fn graph_construction_with_anchors() {
        use cafc_webgraph::{Url, WebGraph};
        let mut g = WebGraph::new();
        let target = g.add_page(
            Url::parse("http://a.com/f").expect("url"),
            "<form>search <input name=q></form>".into(),
        );
        let hub = g.add_page(
            Url::parse("http://hub.com/").expect("url"),
            r#"<a href="http://a.com/f">discount airfare tickets</a>"#.into(),
        );
        g.add_link(hub, target);
        let corpus = FormPageCorpus::from_graph_with_anchors(&g, &[target], &opts());
        assert_eq!(corpus.len(), 1);
        // Anchor vocabulary was collected... but with a single page the idf
        // of every anchor term is ln(1/1)=0. Build with two pages instead.
        let target2 = g.add_page(
            Url::parse("http://b.com/f").expect("url"),
            "<form>keywords <input name=q></form>".into(),
        );
        let hub2 = g.add_page(
            Url::parse("http://hub2.com/").expect("url"),
            r#"<a href="http://b.com/f">engineering jobs board</a>"#.into(),
        );
        g.add_link(hub2, target2);
        let corpus = FormPageCorpus::from_graph_with_anchors(&g, &[target, target2], &opts());
        let airfare = corpus.dict.get("airfar").expect("anchor term interned");
        assert!(corpus.anchor[0].get(airfare) > 0.0);
        assert_eq!(corpus.anchor[1].get(airfare), 0.0);
    }

    #[test]
    fn from_graph_without_anchors_has_empty_anchor_vectors() {
        use cafc_webgraph::{Url, WebGraph};
        let mut g = WebGraph::new();
        let p = g.add_page(
            Url::parse("http://a.com/f").expect("url"),
            "<form><input name=q></form>".into(),
        );
        let corpus = FormPageCorpus::from_graph(&g, &[p], &ModelOptions::default());
        assert!(corpus.anchor[0].is_empty());
    }

    #[test]
    fn empty_corpus() {
        let corpus = FormPageCorpus::from_html(std::iter::empty(), &ModelOptions::default());
        assert!(corpus.is_empty());
    }

    #[test]
    fn ingest_clean_page_is_ok() {
        let pages = ["<title>Flights</title><p>airfare</p><form>depart <input name=d></form>"];
        let (corpus, report) =
            FormPageCorpus::from_html_ingest(pages.iter().copied(), &opts(), &Default::default());
        assert_eq!(corpus.len(), 1);
        assert_eq!(report.outcomes, vec![PageOutcome::Ok]);
        assert_eq!(report.kept, vec![0]);
        assert!(report.is_accounted());
    }

    #[test]
    fn ingest_quarantines_empty_and_oversized() {
        let big = "x".repeat(64);
        let limits = IngestLimits::new()
            .with_hard_max_bytes(32)
            .with_soft_max_bytes(16)
            .with_max_terms(1000);
        let pages = ["", "<!-- only a comment -->", big.as_str()];
        let (corpus, report) =
            FormPageCorpus::from_html_ingest(pages.iter().copied(), &opts(), &limits);
        assert!(corpus.is_empty());
        assert_eq!(report.quarantined(), 3);
        assert!(report.is_accounted());
        assert!(matches!(
            report.outcomes[2],
            PageOutcome::Quarantined {
                error: IngestError::TooLarge {
                    bytes: 64,
                    limit: 32
                }
            }
        ));
    }

    #[test]
    fn ingest_degrades_but_keeps() {
        // No title, no form -> two degradation reasons, page kept.
        let pages = ["<p>airfare deals and cheap flights</p>"];
        let (corpus, report) =
            FormPageCorpus::from_html_ingest(pages.iter().copied(), &opts(), &Default::default());
        assert_eq!(corpus.len(), 1);
        match &report.outcomes[0] {
            PageOutcome::Degraded { reasons } => {
                assert!(reasons.contains(&DegradedReason::MissingTitle));
                assert!(reasons.contains(&DegradedReason::NoFormContent));
            }
            other => panic!("expected degraded, got {other:?}"),
        }
        assert!(report.is_accounted());
    }

    #[test]
    fn ingest_soft_limit_truncates() {
        let body = format!(
            "<title>t</title><form>a <input name=q></form><p>{}</p>",
            "word ".repeat(4000)
        );
        let limits = IngestLimits::new().with_soft_max_bytes(256);
        let pages = [body.as_str()];
        let (corpus, report) =
            FormPageCorpus::from_html_ingest(pages.iter().copied(), &opts(), &limits);
        assert_eq!(corpus.len(), 1);
        match &report.outcomes[0] {
            PageOutcome::Degraded { reasons } => {
                assert!(reasons.contains(&DegradedReason::InputTruncated))
            }
            other => panic!("expected degraded, got {other:?}"),
        }
    }

    #[test]
    fn ingest_term_budget_applies() {
        let body = format!(
            "<title>t</title><form>q <input name=q></form><p>{}</p>",
            "flight ".repeat(64)
        );
        let limits = IngestLimits::new().with_max_terms(8);
        let pages = [body.as_str()];
        let (corpus, report) =
            FormPageCorpus::from_html_ingest(pages.iter().copied(), &opts(), &limits);
        assert_eq!(corpus.len(), 1);
        match &report.outcomes[0] {
            PageOutcome::Degraded { reasons } => {
                assert!(reasons.contains(&DegradedReason::TermBudgetExceeded))
            }
            other => panic!("expected degraded, got {other:?}"),
        }
    }

    #[test]
    fn exec_policies_build_identical_corpora() {
        // More pages than one PAGE_CHUNK so the merge path actually runs
        // across chunk boundaries, with shared and page-unique vocabulary.
        let pages: Vec<String> = (0..40)
            .map(|i| {
                format!(
                    "<title>Page {i}</title><p>shared travel words unique{i} tail{}</p>\
                     <form>field{} <input name=q></form>",
                    i % 7,
                    i % 5
                )
            })
            .collect();
        let refs: Vec<&str> = pages.iter().map(String::as_str).collect();
        let baseline = FormPageCorpus::from_html_ingest_exec(
            refs.iter().copied(),
            &opts(),
            &IngestLimits::new(),
            ExecPolicy::Serial,
        );
        for policy in [
            ExecPolicy::Parallel { threads: 1 },
            ExecPolicy::Parallel { threads: 7 },
            ExecPolicy::Auto,
        ] {
            let (corpus, report) = FormPageCorpus::from_html_ingest_exec(
                refs.iter().copied(),
                &opts(),
                &IngestLimits::new(),
                policy,
            );
            assert_eq!(report, baseline.1, "{policy:?}");
            assert_eq!(corpus.dict.len(), baseline.0.dict.len(), "{policy:?}");
            for i in 0..corpus.len() {
                assert_eq!(corpus.pc[i], baseline.0.pc[i], "pc[{i}] under {policy:?}");
                assert_eq!(
                    corpus.pc_tf[i], baseline.0.pc_tf[i],
                    "pc_tf[{i}] under {policy:?}"
                );
                assert_eq!(corpus.fc[i], baseline.0.fc[i], "fc[{i}] under {policy:?}");
            }
        }
    }

    #[test]
    fn corpus_budget_quarantines_later_pages() {
        let pages: Vec<String> = (0..6)
            .map(|i| format!("<title>t{i}</title><p>travel word{i}</p><form>f{i} <input></form>"))
            .collect();
        let refs: Vec<&str> = pages.iter().map(String::as_str).collect();
        // Establish the per-page cost, then budget for exactly two pages.
        let (_, unbounded) =
            FormPageCorpus::from_html_ingest(refs.iter().copied(), &opts(), &IngestLimits::new());
        assert_eq!(unbounded.kept.len(), 6);
        // A zero budget quarantines everything and reports each page's
        // exact cost in the error, so the test needs no knowledge of the
        // analyzer's term counts.
        let (_, zero) = FormPageCorpus::from_html_ingest(
            refs.iter().copied(),
            &opts(),
            &IngestLimits::new().with_max_corpus_bytes(0),
        );
        let costs: Vec<usize> = zero
            .outcomes
            .iter()
            .map(|o| match o {
                PageOutcome::Quarantined {
                    error: IngestError::BudgetExhausted { needed, .. },
                } => *needed,
                other => panic!("zero budget must quarantine, got {other:?}"),
            })
            .collect();
        assert!(costs.iter().all(|&c| c > 0));
        let limits = IngestLimits::new().with_max_corpus_bytes(costs[0] + costs[1]);
        let (corpus, report) =
            FormPageCorpus::from_html_ingest(refs.iter().copied(), &opts(), &limits);
        assert_eq!(corpus.len(), 2, "budget for two pages keeps two pages");
        assert_eq!(report.kept, vec![0, 1]);
        assert_eq!(report.quarantined(), 4);
        assert!(report.is_accounted());
        for outcome in &report.outcomes[2..] {
            assert!(
                matches!(
                    outcome,
                    PageOutcome::Quarantined {
                        error: IngestError::BudgetExhausted { .. }
                    }
                ),
                "over-budget page must carry the budget error, got {outcome:?}"
            );
        }
    }

    #[test]
    fn budget_decisions_survive_exec_policy_and_shard_size() {
        let pages: Vec<String> = (0..20)
            .map(|i| {
                format!(
                    "<title>t{i}</title><p>shared unique{i}</p><form>f{} <input></form>",
                    i % 3
                )
            })
            .collect();
        let refs: Vec<&str> = pages.iter().map(String::as_str).collect();
        let base_limits = IngestLimits::new().with_max_corpus_bytes(1200);
        let baseline =
            FormPageCorpus::from_html_ingest(refs.iter().copied(), &opts(), &base_limits);
        assert!(baseline.1.quarantined() > 0, "budget must actually bind");
        assert!(!baseline.1.kept.is_empty());
        for shard_pages in [1, 3, 16, 100] {
            for policy in [ExecPolicy::Serial, ExecPolicy::Parallel { threads: 5 }] {
                let limits = base_limits.with_shard_pages(shard_pages);
                let (corpus, report) = FormPageCorpus::from_html_ingest_exec(
                    refs.iter().copied(),
                    &opts(),
                    &limits,
                    policy,
                );
                assert_eq!(report, baseline.1, "shard_pages={shard_pages} {policy:?}");
                assert_eq!(corpus.dict.len(), baseline.0.dict.len());
                assert_eq!(
                    corpus.pc, baseline.0.pc,
                    "shard_pages={shard_pages} {policy:?}"
                );
                assert_eq!(
                    corpus.fc, baseline.0.fc,
                    "shard_pages={shard_pages} {policy:?}"
                );
            }
        }
    }

    #[test]
    fn from_shards_matches_single_batch_for_any_partition() {
        let pages: Vec<String> = (0..23)
            .map(|i| {
                format!(
                    "<title>Page {i}</title><p>shared travel unique{i} tail{}</p>\
                     <form>field{} <input name=q></form>",
                    i % 7,
                    i % 5
                )
            })
            .collect();
        let refs: Vec<&str> = pages.iter().map(String::as_str).collect();
        let limits = IngestLimits::new();
        let baseline = FormPageCorpus::from_html_ingest(refs.iter().copied(), &opts(), &limits);
        // Partitions including empty and singleton shards (satellite edge
        // cases): every one must reproduce the single-batch build exactly.
        let partitions: Vec<Vec<Vec<String>>> = vec![
            vec![pages.clone()],
            pages.iter().map(|p| vec![p.clone()]).collect(),
            vec![
                pages[..5].to_vec(),
                Vec::new(),
                pages[5..6].to_vec(),
                pages[6..].to_vec(),
                Vec::new(),
            ],
        ];
        for (which, shards) in partitions.into_iter().enumerate() {
            for policy in [ExecPolicy::Serial, ExecPolicy::Parallel { threads: 4 }] {
                let (corpus, report) =
                    FormPageCorpus::from_shards_exec(shards.clone(), &opts(), &limits, policy);
                assert_eq!(report, baseline.1, "partition {which} {policy:?}");
                assert_eq!(corpus.dict.len(), baseline.0.dict.len());
                for i in 0..corpus.len() {
                    assert_eq!(corpus.pc[i], baseline.0.pc[i], "partition {which} pc[{i}]");
                    assert_eq!(corpus.fc[i], baseline.0.fc[i], "partition {which} fc[{i}]");
                    assert_eq!(
                        corpus.pc_tf[i], baseline.0.pc_tf[i],
                        "partition {which} pc_tf[{i}]"
                    );
                }
            }
        }
    }

    #[test]
    fn from_shards_of_only_empty_shards_is_empty() {
        let (corpus, report) = FormPageCorpus::from_shards(
            vec![Vec::new(), Vec::new()],
            &opts(),
            &IngestLimits::new(),
        );
        assert!(corpus.is_empty());
        assert_eq!(report.total(), 0);
        assert!(report.is_accounted());
    }

    #[test]
    fn ingest_control_chars_reported() {
        let pages = ["<title>flights</title>\u{0}<form>departure <input name=a></form>"];
        let (_, report) =
            FormPageCorpus::from_html_ingest(pages.iter().copied(), &opts(), &Default::default());
        match &report.outcomes[0] {
            PageOutcome::Degraded { reasons } => {
                assert!(reasons.contains(&DegradedReason::ControlCharsStripped))
            }
            other => panic!("expected degraded, got {other:?}"),
        }
    }
}
