//! Incremental cluster maintenance.
//!
//! The paper's premise is a web "so vast and dynamic — with new sources
//! constantly being added" (§1); §5 sketches using built clusters to
//! classify new sources. This module makes that operational: an
//! [`IncrementalClusters`] state absorbs newly discovered form pages one
//! at a time (nearest-centroid assignment with centroid updates) and
//! tracks *drift* — how far the evolving centroids have moved from the
//! clustering they started as — so callers know when a full re-clustering
//! is warranted.

use crate::space::{FormPageSpace, MultiCentroid};
use cafc_cluster::{ClusterSpace, Partition};

/// A clustering that can absorb new items.
#[derive(Debug, Clone)]
pub struct IncrementalClusters {
    members: Vec<Vec<usize>>,
    centroids: Vec<MultiCentroid>,
    initial_centroids: Vec<MultiCentroid>,
}

impl IncrementalClusters {
    /// Start from an existing partition (empty clusters are kept so
    /// indices remain stable but are never assigned to until re-seeded).
    pub fn from_partition(space: &FormPageSpace<'_>, partition: &Partition) -> Self {
        let members: Vec<Vec<usize>> = partition.clusters().to_vec();
        let centroids: Vec<MultiCentroid> = members
            .iter()
            .map(|m| {
                if m.is_empty() {
                    MultiCentroid::default()
                } else {
                    space.centroid(m)
                }
            })
            .collect();
        IncrementalClusters {
            initial_centroids: centroids.clone(),
            members,
            centroids,
        }
    }

    /// Current member lists.
    pub fn members(&self) -> &[Vec<usize>] {
        &self.members
    }

    /// Assign one new item to its most similar non-empty cluster, add it,
    /// and refresh that cluster's centroid. Returns the cluster index.
    ///
    /// When every cluster is empty (a fully-quarantined start state) the
    /// item founds cluster 0, which is created if no slot exists at all.
    pub fn assign(&mut self, space: &FormPageSpace<'_>, item: usize) -> usize {
        let best = self
            .centroids
            .iter()
            .enumerate()
            .filter(|(ci, _)| !self.members[*ci].is_empty())
            .max_by(|(_, a), (_, b)| {
                space
                    .similarity(a, item)
                    .partial_cmp(&space.similarity(b, item))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(ci, _)| ci)
            .unwrap_or(0);
        if self.members.is_empty() {
            self.members.push(Vec::new());
            self.centroids.push(MultiCentroid::default());
            self.initial_centroids.push(MultiCentroid::default());
        }
        self.members[best].push(item);
        self.centroids[best] = space.centroid(&self.members[best]);
        best
    }

    /// Assign a batch, returning `(item, cluster)` pairs in input order.
    pub fn add_batch(&mut self, space: &FormPageSpace<'_>, items: &[usize]) -> Vec<(usize, usize)> {
        items.iter().map(|&i| (i, self.assign(space, i))).collect()
    }

    /// Move `item` from cluster `from` to cluster `to` without touching
    /// centroids. The repair pass in [`crate::stream`] applies a batch of
    /// moves and then refreshes every affected centroid exactly once via
    /// [`IncrementalClusters::refresh_centroids`]; refreshing per move
    /// would make the outcome depend on move order twice over.
    ///
    /// A no-op when `item` is not currently in `from`.
    pub fn move_item(&mut self, item: usize, from: usize, to: usize) {
        if from == to {
            return;
        }
        if let Some(pos) = self.members[from].iter().position(|&m| m == item) {
            self.members[from].remove(pos);
            self.members[to].push(item);
        }
    }

    /// Recompute the centroids of the listed clusters from their current
    /// members. Clusters emptied by moves get a default (zero) centroid,
    /// matching the empty-cluster convention of
    /// [`IncrementalClusters::from_partition`].
    pub fn refresh_centroids(&mut self, space: &FormPageSpace<'_>, clusters: &[usize]) {
        for &ci in clusters {
            self.centroids[ci] = if self.members[ci].is_empty() {
                MultiCentroid::default()
            } else {
                space.centroid(&self.members[ci])
            };
        }
    }

    /// Mean centroid drift since construction: `1 − sim(initial, current)`
    /// averaged over non-empty clusters. 0.0 means nothing moved; values
    /// near 1.0 mean the clustering has effectively been replaced and a
    /// fresh CAFC-CH run is in order.
    pub fn drift(&self, space: &FormPageSpace<'_>) -> f64 {
        let mut sum = 0.0;
        let mut count = 0usize;
        for (ci, m) in self.members.iter().enumerate() {
            if m.is_empty() {
                continue;
            }
            sum +=
                1.0 - space.centroid_similarity(&self.initial_centroids[ci], &self.centroids[ci]);
            count += 1;
        }
        if count == 0 {
            0.0
        } else {
            sum / count as f64
        }
    }

    /// Snapshot as a [`Partition`] over `num_items` total items.
    pub fn to_partition(&self, num_items: usize) -> Partition {
        Partition::new(self.members.clone(), num_items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{FormPageCorpus, ModelOptions};
    use crate::space::FeatureConfig;

    /// 4 seed pages in two domains + 4 new arrivals (2 per domain).
    fn fixture() -> FormPageCorpus {
        let pages = [
            "<p>airfare flights travel airline deals</p><form>departure <input name=a></form>",
            "<p>flights airfare vacation travel</p><form>arrival <input name=b></form>",
            "<p>careers employment salary resume</p><form>keywords <input name=c></form>",
            "<p>employment careers hiring resume</p><form>category <input name=d></form>",
            // arrivals
            "<p>airline flights airfare deals</p><form>return <input name=e></form>",
            "<p>careers salary openings hiring</p><form>location <input name=f></form>",
            "<p>travel airfare airline vacation</p><form>cabin <input name=g></form>",
            "<p>resume employment salary careers</p><form>industry <input name=h></form>",
        ];
        FormPageCorpus::from_html(pages.iter().copied(), &ModelOptions::default())
    }

    #[test]
    fn arrivals_join_matching_clusters() {
        let corpus = fixture();
        let space = FormPageSpace::new(&corpus, FeatureConfig::combined());
        let partition = Partition::new(vec![vec![0, 1], vec![2, 3]], 8);
        let mut inc = IncrementalClusters::from_partition(&space, &partition);
        let assigned = inc.add_batch(&space, &[4, 5, 6, 7]);
        assert_eq!(assigned, vec![(4, 0), (5, 1), (6, 0), (7, 1)]);
        assert_eq!(inc.members()[0], vec![0, 1, 4, 6]);
        assert_eq!(inc.members()[1], vec![2, 3, 5, 7]);
    }

    #[test]
    fn centroids_update_with_arrivals() {
        let corpus = fixture();
        let space = FormPageSpace::new(&corpus, FeatureConfig::combined());
        let partition = Partition::new(vec![vec![0, 1], vec![2, 3]], 8);
        let mut inc = IncrementalClusters::from_partition(&space, &partition);
        assert_eq!(inc.drift(&space), 0.0);
        inc.add_batch(&space, &[4, 5, 6, 7]);
        let drift = inc.drift(&space);
        assert!(drift > 0.0, "absorbing items must move centroids");
        assert!(
            drift < 0.5,
            "same-domain arrivals should not upend centroids: {drift}"
        );
    }

    #[test]
    fn empty_clusters_never_receive_items() {
        let corpus = fixture();
        let space = FormPageSpace::new(&corpus, FeatureConfig::combined());
        let partition = Partition::new(vec![vec![0, 1], vec![], vec![2, 3]], 8);
        let mut inc = IncrementalClusters::from_partition(&space, &partition);
        for item in 4..8 {
            let c = inc.assign(&space, item);
            assert_ne!(c, 1, "item {item} landed in the empty cluster");
        }
    }

    #[test]
    fn to_partition_roundtrip() {
        let corpus = fixture();
        let space = FormPageSpace::new(&corpus, FeatureConfig::combined());
        let partition = Partition::new(vec![vec![0, 1], vec![2, 3]], 8);
        let mut inc = IncrementalClusters::from_partition(&space, &partition);
        inc.add_batch(&space, &[4, 5]);
        let p = inc.to_partition(8);
        assert_eq!(p.num_assigned(), 6);
        assert_eq!(p.num_clusters(), 2);
    }

    #[test]
    fn move_item_defers_centroid_refresh() {
        let corpus = fixture();
        let space = FormPageSpace::new(&corpus, FeatureConfig::combined());
        let partition = Partition::new(vec![vec![0, 1], vec![2, 3]], 8);
        let mut inc = IncrementalClusters::from_partition(&space, &partition);
        inc.move_item(1, 0, 1);
        assert_eq!(inc.members()[0], vec![0]);
        assert_eq!(inc.members()[1], vec![2, 3, 1]);
        // Centroids are stale until refreshed, so drift is still zero.
        assert_eq!(inc.drift(&space), 0.0);
        inc.refresh_centroids(&space, &[0, 1]);
        assert!(inc.drift(&space) > 0.0, "refresh must recompute centroids");
        // Moving an item that is not in `from` is a no-op.
        inc.move_item(7, 0, 1);
        assert_eq!(inc.members()[0], vec![0]);
        assert_eq!(inc.members()[1], vec![2, 3, 1]);
    }

    #[test]
    fn refresh_zeroes_an_emptied_cluster() {
        let corpus = fixture();
        let space = FormPageSpace::new(&corpus, FeatureConfig::combined());
        let partition = Partition::new(vec![vec![0], vec![2, 3]], 8);
        let mut inc = IncrementalClusters::from_partition(&space, &partition);
        inc.move_item(0, 0, 1);
        inc.refresh_centroids(&space, &[0, 1]);
        // The emptied cluster is back to the default centroid and never
        // attracts assignments.
        for item in 4..8 {
            assert_eq!(inc.assign(&space, item), 1);
        }
    }

    #[test]
    fn all_empty_founds_first_cluster() {
        let corpus = fixture();
        let space = FormPageSpace::new(&corpus, FeatureConfig::combined());
        let partition = Partition::new(vec![vec![], vec![]], 8);
        let mut inc = IncrementalClusters::from_partition(&space, &partition);
        assert_eq!(inc.assign(&space, 0), 0);
        assert_eq!(inc.members()[0], vec![0]);
        // The next arrival sees a non-empty cluster and joins normally.
        assert_eq!(inc.assign(&space, 1), 0);
    }

    #[test]
    fn zero_cluster_start_creates_slot() {
        let corpus = fixture();
        let space = FormPageSpace::new(&corpus, FeatureConfig::combined());
        let partition = Partition::new(Vec::new(), 8);
        let mut inc = IncrementalClusters::from_partition(&space, &partition);
        assert_eq!(inc.assign(&space, 0), 0);
        assert_eq!(inc.members().len(), 1);
    }
}
