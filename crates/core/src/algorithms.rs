//! CAFC-C (Algorithm 1) and CAFC-CH (Algorithms 2–3).

use crate::space::FormPageSpace;
use cafc_cluster::{
    greedy_distant_seeds, kmeans_obs, random_singleton_seeds, ClusterSpace, KMeansOptions,
    KMeansOutcome,
};
use cafc_exec::{par_chunks, ExecPolicy, DEFAULT_CHUNK};
use cafc_obs::Obs;
use cafc_webgraph::{hub_clusters, HubClusterOptions, HubStats, PageId, WebGraph};
use rand::Rng;

/// Run CAFC-C: k-means from random singleton seeds over the configured
/// feature space(s).
///
/// The paper evaluates CAFC-C as the average over 20 runs; callers that
/// want that behaviour loop over seeds (see `cafc-bench`).
pub fn cafc_c<R: Rng>(
    space: &FormPageSpace<'_>,
    k: usize,
    kmeans_opts: &KMeansOptions,
    rng: &mut R,
) -> KMeansOutcome {
    cafc_c_exec(space, k, kmeans_opts, rng, ExecPolicy::Serial)
}

/// Run CAFC-C under an explicit execution policy.
///
/// Bit-identical to [`cafc_c`] (which delegates here with
/// [`ExecPolicy::Serial`]) for a fixed RNG seed: seeding draws stay on the
/// calling thread and the k-means loop is deterministic per policy.
pub fn cafc_c_exec<R: Rng>(
    space: &FormPageSpace<'_>,
    k: usize,
    kmeans_opts: &KMeansOptions,
    rng: &mut R,
    policy: ExecPolicy,
) -> KMeansOutcome {
    cafc_c_obs(space, k, kmeans_opts, rng, policy, &Obs::disabled())
}

/// Run CAFC-C with instrumentation: seeding plus the observed k-means loop
/// ([`kmeans_obs`]). Bit-identical to [`cafc_c_exec`] for a fixed RNG seed
/// whether or not a sink is installed.
pub fn cafc_c_obs<R: Rng>(
    space: &FormPageSpace<'_>,
    k: usize,
    kmeans_opts: &KMeansOptions,
    rng: &mut R,
    policy: ExecPolicy,
    obs: &Obs,
) -> KMeansOutcome {
    let seeds = random_singleton_seeds(space, k, rng);
    kmeans_obs(space, &seeds, kmeans_opts, policy, obs)
}

/// CAFC-CH configuration.
///
/// Construct with [`CafcChConfig::default`] or
/// [`CafcChConfig::paper_default`] plus the chainable `with_*` setters; the
/// struct is `#[non_exhaustive]` so future knobs are not breaking changes.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct CafcChConfig {
    /// Number of clusters `k`.
    pub k: usize,
    /// Hub-cluster construction options (backlink limit, min cardinality,
    /// root fallback, intra-site elimination).
    pub hub: HubClusterOptions,
    /// K-means loop options.
    pub kmeans: KMeansOptions,
    /// §6 extension (off by default): drop candidate hub clusters whose
    /// average pairwise *content* similarity falls below this threshold —
    /// a label-free hub-quality gate.
    pub min_hub_quality: Option<f64>,
}

impl Default for CafcChConfig {
    /// The paper's headline configuration at its headline `k = 8`.
    fn default() -> Self {
        CafcChConfig::paper_default(8)
    }
}

impl CafcChConfig {
    /// The paper's headline configuration: `k = 8`, hub cardinality ≥ 8.
    pub fn paper_default(k: usize) -> Self {
        CafcChConfig {
            k,
            hub: HubClusterOptions::default(),
            kmeans: KMeansOptions::default(),
            min_hub_quality: None,
        }
    }

    /// Set the number of clusters `k`.
    pub fn with_k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Set the hub-cluster construction options.
    pub fn with_hub(mut self, hub: HubClusterOptions) -> Self {
        self.hub = hub;
        self
    }

    /// Set the k-means loop options.
    pub fn with_kmeans(mut self, kmeans: KMeansOptions) -> Self {
        self.kmeans = kmeans;
        self
    }

    /// Set (or clear) the hub-quality gate.
    pub fn with_min_hub_quality(mut self, min: Option<f64>) -> Self {
        self.min_hub_quality = min;
        self
    }
}

/// CAFC-CH result.
#[derive(Debug, Clone)]
pub struct CafcChOutcome {
    /// The k-means result seeded with hub clusters.
    pub outcome: KMeansOutcome,
    /// Hub construction statistics (§3.1 numbers).
    pub hub_stats: HubStats,
    /// How many seeds came from hub clusters.
    pub hub_seeds: usize,
    /// How many seeds had to be padded with random singletons (only when
    /// fewer than `k` hub clusters survive filtering).
    pub padded_seeds: usize,
    /// Hub clusters dropped by the `min_hub_quality` gate.
    pub quality_rejected: usize,
}

/// Run CAFC-CH (Algorithm 2): build hub clusters over `targets` (aligned
/// index-for-index with the items of `space`), select the `k` most distant
/// ones (Algorithm 3), and run k-means from those seeds.
///
/// # Panics
/// Panics if `targets.len() != space.len()`.
pub fn cafc_ch<R: Rng>(
    graph: &WebGraph,
    targets: &[PageId],
    space: &FormPageSpace<'_>,
    config: &CafcChConfig,
    rng: &mut R,
) -> CafcChOutcome {
    cafc_ch_exec(graph, targets, space, config, rng, ExecPolicy::Serial)
}

/// Run CAFC-CH under an explicit execution policy.
///
/// Bit-identical to [`cafc_ch`] (which delegates here with
/// [`ExecPolicy::Serial`]) for a fixed RNG seed: the hub-quality gate and
/// the k-means loop parallelize deterministically, and the seed-padding
/// RNG draws stay on the calling thread in a fixed order.
///
/// # Panics
/// Panics if `targets.len() != space.len()`.
pub fn cafc_ch_exec<R: Rng>(
    graph: &WebGraph,
    targets: &[PageId],
    space: &FormPageSpace<'_>,
    config: &CafcChConfig,
    rng: &mut R,
    policy: ExecPolicy,
) -> CafcChOutcome {
    cafc_ch_obs(graph, targets, space, config, rng, policy, &Obs::disabled())
}

/// Run CAFC-CH with instrumentation: seed selection under the
/// `seed.select_hub_clusters` span plus the observed k-means loop.
/// Bit-identical to [`cafc_ch_exec`] for a fixed RNG seed whether or not a
/// sink is installed.
///
/// # Panics
/// Panics if `targets.len() != space.len()`.
pub fn cafc_ch_obs<R: Rng>(
    graph: &WebGraph,
    targets: &[PageId],
    space: &FormPageSpace<'_>,
    config: &CafcChConfig,
    rng: &mut R,
    policy: ExecPolicy,
    obs: &Obs,
) -> CafcChOutcome {
    let (mut seeds, hub_stats, quality_rejected) =
        select_hub_clusters_obs(graph, targets, space, config, policy, obs);
    let hub_seeds = seeds.len();

    // Degenerate webs can yield fewer than k hub clusters; pad with random
    // singleton seeds so k-means still produces k clusters.
    let mut padded_seeds = 0;
    if seeds.len() < config.k {
        let covered: Vec<usize> = seeds.iter().flatten().copied().collect();
        let mut free: Vec<usize> = (0..space.len()).filter(|i| !covered.contains(i)).collect();
        while seeds.len() < config.k && !free.is_empty() {
            let pick = rng.random_range(0..free.len());
            seeds.push(vec![free.swap_remove(pick)]);
            padded_seeds += 1;
        }
    }
    obs.add("seed.hub_seeds", hub_seeds as u64);
    obs.add("seed.padded_seeds", padded_seeds as u64);

    let outcome = kmeans_obs(space, &seeds, &config.kmeans, policy, obs);
    CafcChOutcome {
        outcome,
        hub_stats,
        hub_seeds,
        padded_seeds,
        quality_rejected,
    }
}

/// `SelectHubClusters` (Algorithm 3) as a standalone step: build hub
/// clusters over `targets`, apply the optional quality gate, and greedily
/// pick the `config.k` mutually most distant ones.
///
/// Returns `(seed clusters, hub stats, quality-gate rejections)`. Exposed
/// separately from [`cafc_ch`] so alternative clusterers (e.g. the Table-2
/// HAC variant) can consume the same seeds.
///
/// # Panics
/// Panics if `targets.len() != space.len()`.
pub fn select_hub_clusters(
    graph: &WebGraph,
    targets: &[PageId],
    space: &FormPageSpace<'_>,
    config: &CafcChConfig,
) -> (Vec<Vec<usize>>, HubStats, usize) {
    select_hub_clusters_exec(graph, targets, space, config, ExecPolicy::Serial)
}

/// `SelectHubClusters` under an explicit execution policy; bit-identical to
/// [`select_hub_clusters`] (which delegates here with
/// [`ExecPolicy::Serial`]) for every policy.
///
/// # Panics
/// Panics if `targets.len() != space.len()`.
pub fn select_hub_clusters_exec(
    graph: &WebGraph,
    targets: &[PageId],
    space: &FormPageSpace<'_>,
    config: &CafcChConfig,
    policy: ExecPolicy,
) -> (Vec<Vec<usize>>, HubStats, usize) {
    select_hub_clusters_obs(graph, targets, space, config, policy, &Obs::disabled())
}

/// `SelectHubClusters` with instrumentation: the whole step runs under a
/// `seed.select_hub_clusters` span, and candidate/rejection counts land in
/// `seed.hub_candidates` / `seed.quality_rejected`. Bit-identical to
/// [`select_hub_clusters_exec`] whether or not a sink is installed.
///
/// # Panics
/// Panics if `targets.len() != space.len()`.
pub fn select_hub_clusters_obs(
    graph: &WebGraph,
    targets: &[PageId],
    space: &FormPageSpace<'_>,
    config: &CafcChConfig,
    policy: ExecPolicy,
    obs: &Obs,
) -> (Vec<Vec<usize>>, HubStats, usize) {
    let _span = obs.span("seed.select_hub_clusters");
    assert_eq!(
        targets.len(),
        space.len(),
        "targets must align with the corpus items"
    );
    let (clusters, hub_stats) = hub_clusters(graph, targets, &config.hub);
    let mut candidates: Vec<Vec<usize>> = clusters.into_iter().map(|c| c.members).collect();
    obs.add("seed.hub_candidates", candidates.len() as u64);

    // Optional quality gate (content coherence of each hub cluster). Each
    // candidate's score is one closure; the retain order is the candidate
    // order, so the surviving set is policy-independent.
    let mut quality_rejected = 0;
    if let Some(min_q) = config.min_hub_quality {
        let before = candidates.len();
        let scores = cafc_exec::par_map_slice(policy, &candidates, |_, members| {
            hub_cluster_quality_exec(space, members, ExecPolicy::Serial)
        });
        let mut keep = scores.iter().map(|&q| q >= min_q);
        candidates.retain(|_| keep.next().unwrap_or(false));
        quality_rejected = before - candidates.len();
    }
    obs.add("seed.quality_rejected", quality_rejected as u64);

    // Greedy farthest-first selection of k seed clusters (Alg. 3, lines 3-7).
    let selected = greedy_distant_seeds(space, &candidates, config.k);
    let seeds: Vec<Vec<usize>> = selected.iter().map(|&i| candidates[i].clone()).collect();
    (seeds, hub_stats, quality_rejected)
}

/// Average pairwise content similarity within a candidate hub cluster
/// (1.0 for singletons).
pub fn hub_cluster_quality(space: &FormPageSpace<'_>, members: &[usize]) -> f64 {
    hub_cluster_quality_exec(space, members, ExecPolicy::Serial)
}

/// Hub-cluster quality under an explicit execution policy.
///
/// Bit-identical to [`hub_cluster_quality`] (which delegates here with
/// [`ExecPolicy::Serial`]) for every policy: the upper-triangle pair sum is
/// accumulated per fixed row chunk and the partials are added in chunk
/// order, so the float accumulation order never depends on thread count.
pub fn hub_cluster_quality_exec(
    space: &FormPageSpace<'_>,
    members: &[usize],
    policy: ExecPolicy,
) -> f64 {
    if members.len() < 2 {
        return 1.0;
    }
    let partials = par_chunks(policy, members.len(), DEFAULT_CHUNK, |rows| {
        let mut sum = 0.0;
        let mut count = 0usize;
        for i in rows {
            let a = members[i];
            for &b in &members[i + 1..] {
                sum += space.item_similarity(a, b);
                count += 1;
            }
        }
        (sum, count)
    });
    let (sum, count) = partials
        .into_iter()
        .fold((0.0, 0usize), |(s, c), (ps, pc)| (s + ps, c + pc));
    sum / count.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{FormPageCorpus, ModelOptions};
    use crate::space::FeatureConfig;
    use cafc_webgraph::Url;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Six pages in two obvious domains, plus hubs co-citing each trio.
    fn fixture() -> (WebGraph, Vec<PageId>, FormPageCorpus) {
        let mut g = WebGraph::new();
        let airfare = |i: usize| {
            format!(
                "<title>Flights {i}</title><p>airfare travel deals flights vacation airline</p>\
                 <form>departure arrival cabin <input name=a></form>"
            )
        };
        let jobs = |i: usize| {
            format!(
                "<title>Jobs {i}</title><p>careers employment salary resume openings hiring</p>\
                 <form>keywords category location <input name=b></form>"
            )
        };
        let mut targets = Vec::new();
        for i in 0..3 {
            let u = Url::parse(&format!("http://air{i}.com/f")).expect("url");
            targets.push(g.add_page(u, airfare(i)));
        }
        for i in 0..3 {
            let u = Url::parse(&format!("http://job{i}.com/f")).expect("url");
            targets.push(g.add_page(u, jobs(i)));
        }
        // One hub per domain co-citing its trio.
        let hub_a = g.intern(Url::parse("http://dir-air.org/").expect("url"));
        let hub_j = g.intern(Url::parse("http://dir-job.org/").expect("url"));
        for i in 0..3 {
            g.add_link(hub_a, targets[i]);
            g.add_link(hub_j, targets[3 + i]);
        }
        let ids: Vec<PageId> = targets.clone();
        let corpus = FormPageCorpus::from_graph(&g, &ids, &ModelOptions::default());
        (g, ids, corpus)
    }

    fn strict_kmeans() -> KMeansOptions {
        KMeansOptions::strict()
    }

    #[test]
    fn cafc_c_separates_domains() {
        let (_, _, corpus) = fixture();
        let space = FormPageSpace::new(&corpus, FeatureConfig::combined());
        let mut rng = StdRng::seed_from_u64(5);
        let out = cafc_c(&space, 2, &strict_kmeans(), &mut rng);
        let clusters = out.partition.clusters();
        for c in clusters {
            assert!(
                c.iter().all(|&i| i < 3) || c.iter().all(|&i| i >= 3),
                "mixed cluster {c:?}"
            );
        }
    }

    #[test]
    fn cafc_ch_uses_hub_seeds() {
        let (g, targets, corpus) = fixture();
        let space = FormPageSpace::new(&corpus, FeatureConfig::combined());
        let config = CafcChConfig::paper_default(2)
            .with_hub(HubClusterOptions {
                min_cardinality: 2,
                ..Default::default()
            })
            .with_kmeans(strict_kmeans());
        let mut rng = StdRng::seed_from_u64(6);
        let out = cafc_ch(&g, &targets, &space, &config, &mut rng);
        assert_eq!(out.hub_seeds, 2);
        assert_eq!(out.padded_seeds, 0);
        assert_eq!(out.hub_stats.distinct_clusters, 2);
        let clusters = out.outcome.partition.clusters();
        let mut sorted: Vec<Vec<usize>> = clusters.to_vec();
        for c in &mut sorted {
            c.sort_unstable();
        }
        sorted.sort();
        assert_eq!(sorted, vec![vec![0, 1, 2], vec![3, 4, 5]]);
    }

    #[test]
    fn cafc_ch_pads_when_hubs_scarce() {
        let (g, targets, corpus) = fixture();
        let space = FormPageSpace::new(&corpus, FeatureConfig::combined());
        // min_cardinality 4 kills both 3-member hub clusters.
        let config = CafcChConfig::paper_default(2)
            .with_hub(HubClusterOptions {
                min_cardinality: 4,
                ..Default::default()
            })
            .with_kmeans(strict_kmeans());
        let mut rng = StdRng::seed_from_u64(7);
        let out = cafc_ch(&g, &targets, &space, &config, &mut rng);
        assert_eq!(out.hub_seeds, 0);
        assert_eq!(out.padded_seeds, 2);
        assert_eq!(out.outcome.partition.num_clusters(), 2);
    }

    #[test]
    fn quality_gate_drops_incoherent_hubs() {
        let (mut g, targets, _) = fixture();
        // Add a contaminated hub mixing both domains.
        let bad_hub = g.intern(Url::parse("http://dir-mixed.org/").expect("url"));
        for &t in &targets {
            g.add_link(bad_hub, t);
        }
        let corpus = FormPageCorpus::from_graph(&g, &targets, &ModelOptions::default());
        let space = FormPageSpace::new(&corpus, FeatureConfig::combined());
        let config = CafcChConfig::paper_default(2)
            .with_hub(HubClusterOptions {
                min_cardinality: 2,
                ..Default::default()
            })
            .with_kmeans(strict_kmeans())
            .with_min_hub_quality(Some(0.5));
        let mut rng = StdRng::seed_from_u64(8);
        let out = cafc_ch(&g, &targets, &space, &config, &mut rng);
        assert!(
            out.quality_rejected >= 1,
            "the mixed hub should be gated out"
        );
    }

    #[test]
    fn hub_cluster_quality_values() {
        let (_, _, corpus) = fixture();
        let space = FormPageSpace::new(&corpus, FeatureConfig::combined());
        assert_eq!(hub_cluster_quality(&space, &[0]), 1.0);
        let pure = hub_cluster_quality(&space, &[0, 1, 2]);
        let mixed = hub_cluster_quality(&space, &[0, 1, 3]);
        assert!(pure > mixed, "pure {pure} <= mixed {mixed}");
    }

    #[test]
    fn exec_policies_agree_exactly() {
        let (g, targets, corpus) = fixture();
        let space = FormPageSpace::new(&corpus, FeatureConfig::combined());
        let config = CafcChConfig::paper_default(2)
            .with_hub(HubClusterOptions {
                min_cardinality: 2,
                ..Default::default()
            })
            .with_kmeans(strict_kmeans())
            .with_min_hub_quality(Some(0.1));
        let mut rng = StdRng::seed_from_u64(11);
        let baseline = cafc_ch_exec(&g, &targets, &space, &config, &mut rng, ExecPolicy::Serial);
        for policy in [
            ExecPolicy::Parallel { threads: 1 },
            ExecPolicy::Parallel { threads: 7 },
            ExecPolicy::Auto,
        ] {
            let mut rng = StdRng::seed_from_u64(11);
            let out = cafc_ch_exec(&g, &targets, &space, &config, &mut rng, policy);
            assert_eq!(
                out.outcome.partition, baseline.outcome.partition,
                "{policy:?}"
            );
            assert_eq!(out.hub_seeds, baseline.hub_seeds, "{policy:?}");
            let q = hub_cluster_quality_exec(&space, &[0, 1, 2, 3], policy);
            let q0 = hub_cluster_quality_exec(&space, &[0, 1, 2, 3], ExecPolicy::Serial);
            assert_eq!(q.to_bits(), q0.to_bits(), "quality under {policy:?}");
        }
    }

    #[test]
    #[should_panic(expected = "align")]
    fn cafc_ch_rejects_misaligned_targets() {
        let (g, targets, corpus) = fixture();
        let space = FormPageSpace::new(&corpus, FeatureConfig::combined());
        let mut rng = StdRng::seed_from_u64(9);
        cafc_ch(
            &g,
            &targets[..3],
            &space,
            &CafcChConfig::paper_default(2),
            &mut rng,
        );
    }
}
