//! The unified front door: one builder that wires model construction,
//! hardened ingestion, feature configuration, algorithm choice and the
//! execution policy together.
//!
//! The free functions ([`cafc_c`](crate::cafc_c), [`cafc_ch`](crate::cafc_ch))
//! and the four `FormPageCorpus::from_*` constructors remain available —
//! they are thin wrappers over the same machinery — but new code should
//! start here:
//!
//! ```
//! use cafc::prelude::*;
//! use cafc_corpus::{generate, CorpusConfig};
//!
//! let web = generate(&CorpusConfig::small(7));
//! let targets = web.form_page_ids();
//!
//! let outcome = Pipeline::builder()
//!     .algorithm(Algorithm::CafcCh(CafcChConfig::paper_default(8)))
//!     .exec(ExecPolicy::Auto)
//!     .seed(1)
//!     .build()
//!     .run_graph(&web.graph, &targets)
//!     .expect("graph input satisfies CAFC-CH");
//! assert_eq!(outcome.partition.num_clusters(), 8);
//! ```

use crate::algorithms::{cafc_c_obs, cafc_ch_obs, CafcChConfig};
use crate::ingest::{IngestLimits, IngestReport};
use crate::model::{FormPageCorpus, ModelOptions};
use crate::space::{FeatureConfig, FormPageSpace};
use cafc_cluster::{
    bisecting_kmeans_obs, hac_obs, BisectOptions, HacOptions, KMeansOptions, Linkage, Partition,
};
use cafc_exec::ExecPolicy;
use cafc_obs::Obs;
use cafc_webgraph::{HubStats, PageId, WebGraph};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// Which clustering algorithm the pipeline runs.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum Algorithm {
    /// CAFC-C (Algorithm 1): k-means from random singleton seeds.
    CafcC {
        /// Number of clusters.
        k: usize,
    },
    /// CAFC-CH (Algorithms 2–3): hub-cluster seeds, then k-means. Requires
    /// graph input ([`Pipeline::run_graph`]).
    CafcCh(CafcChConfig),
    /// Hierarchical agglomerative clustering from singletons (§4.3).
    Hac {
        /// Target number of clusters.
        k: usize,
        /// Linkage criterion.
        linkage: Linkage,
    },
    /// Bisecting k-means (the \[31\] baseline).
    Bisect {
        /// Target number of clusters.
        k: usize,
        /// Trial splits per bisection.
        trials: usize,
    },
}

impl Default for Algorithm {
    /// The paper's headline algorithm at its headline configuration.
    fn default() -> Self {
        Algorithm::CafcCh(CafcChConfig::default())
    }
}

/// Why a pipeline run could not produce a clustering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum PipelineError {
    /// The configured algorithm needs backlink structure; feed the pipeline
    /// through [`Pipeline::run_graph`] instead of [`Pipeline::run_html`].
    NeedsGraph,
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::NeedsGraph => write!(
                f,
                "the configured algorithm requires a web graph; use run_graph"
            ),
        }
    }
}

impl std::error::Error for PipelineError {}

/// Algorithm-specific result details beyond the partition itself.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum AlgorithmDetails {
    /// CAFC-C / plain k-means loop statistics.
    KMeans {
        /// Assignment iterations performed.
        iterations: usize,
        /// Whether the move-fraction criterion was met.
        converged: bool,
    },
    /// CAFC-CH seeding and loop statistics.
    CafcCh {
        /// Hub construction statistics (§3.1 numbers).
        hub_stats: HubStats,
        /// Seeds taken from hub clusters.
        hub_seeds: usize,
        /// Seeds padded with random singletons.
        padded_seeds: usize,
        /// Hub clusters dropped by the quality gate.
        quality_rejected: usize,
        /// Assignment iterations performed.
        iterations: usize,
        /// Whether the move-fraction criterion was met.
        converged: bool,
    },
    /// HAC has no extra statistics.
    Hac,
    /// Bisecting k-means has no extra statistics.
    Bisect,
}

/// Everything one pipeline run produces.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct PipelineOutcome {
    /// The clustering.
    pub partition: Partition,
    /// The vectorized corpus the clustering ran over.
    pub corpus: FormPageCorpus,
    /// Per-page ingestion accounting — `Some` only when ingest limits were
    /// configured and the input was raw HTML.
    pub ingest: Option<IngestReport>,
    /// Algorithm-specific statistics.
    pub details: AlgorithmDetails,
}

/// A fully configured CAFC run: model → features → algorithm, under one
/// execution policy. Build with [`Pipeline::builder`].
#[derive(Debug, Clone)]
pub struct Pipeline {
    model: ModelOptions,
    limits: Option<IngestLimits>,
    features: FeatureConfig,
    algorithm: Algorithm,
    exec: ExecPolicy,
    seed: u64,
    anchors: bool,
    obs: Obs,
}

impl Pipeline {
    /// Start configuring a pipeline. Every knob has the paper's default.
    pub fn builder() -> PipelineBuilder {
        PipelineBuilder::default()
    }

    /// The configured execution policy.
    pub fn exec_policy(&self) -> ExecPolicy {
        self.exec
    }

    /// The observability handle this pipeline records into (disabled unless
    /// the builder installed one via [`PipelineBuilder::obs`]).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Cluster raw HTML documents.
    ///
    /// When ingest limits are configured the hardened ingestion layer runs
    /// and the outcome carries an [`IngestReport`]; otherwise all pages are
    /// vectorized directly. Fails with [`PipelineError::NeedsGraph`] if the
    /// configured algorithm needs backlink structure.
    pub fn run_html(&self, pages: &[&str]) -> Result<PipelineOutcome, PipelineError> {
        if matches!(self.algorithm, Algorithm::CafcCh(_)) {
            return Err(PipelineError::NeedsGraph);
        }
        let (corpus, ingest) = match &self.limits {
            Some(limits) => {
                let (corpus, report) = FormPageCorpus::from_html_ingest_obs(
                    pages.iter().copied(),
                    &self.model,
                    limits,
                    self.exec,
                    &self.obs,
                );
                (corpus, Some(report))
            }
            None => (
                FormPageCorpus::from_html_obs(
                    pages.iter().copied(),
                    &self.model,
                    self.exec,
                    &self.obs,
                ),
                None,
            ),
        };
        let (partition, details) = self.cluster(&corpus, None)?;
        Ok(PipelineOutcome {
            partition,
            corpus,
            ingest,
            details,
        })
    }

    /// Cluster target pages stored in a web graph (with anchor-text vectors
    /// when the builder enabled them).
    pub fn run_graph(
        &self,
        graph: &WebGraph,
        targets: &[PageId],
    ) -> Result<PipelineOutcome, PipelineError> {
        let corpus = if self.anchors {
            FormPageCorpus::from_graph_with_anchors_obs(
                graph,
                targets,
                &self.model,
                self.exec,
                &self.obs,
            )
        } else {
            FormPageCorpus::from_graph_obs(graph, targets, &self.model, self.exec, &self.obs)
        };
        let (partition, details) = self.cluster(&corpus, Some((graph, targets)))?;
        Ok(PipelineOutcome {
            partition,
            corpus,
            ingest: None,
            details,
        })
    }

    fn cluster(
        &self,
        corpus: &FormPageCorpus,
        graph: Option<(&WebGraph, &[PageId])>,
    ) -> Result<(Partition, AlgorithmDetails), PipelineError> {
        let space = FormPageSpace::new(corpus, self.features);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let _cluster_span = self.obs.span("cluster");
        match &self.algorithm {
            Algorithm::CafcC { k } => {
                let out = cafc_c_obs(
                    &space,
                    *k,
                    &KMeansOptions::default(),
                    &mut rng,
                    self.exec,
                    &self.obs,
                );
                Ok((
                    out.partition,
                    AlgorithmDetails::KMeans {
                        iterations: out.iterations,
                        converged: out.converged,
                    },
                ))
            }
            Algorithm::CafcCh(config) => {
                let Some((graph, targets)) = graph else {
                    return Err(PipelineError::NeedsGraph);
                };
                let out = cafc_ch_obs(
                    graph, targets, &space, config, &mut rng, self.exec, &self.obs,
                );
                Ok((
                    out.outcome.partition,
                    AlgorithmDetails::CafcCh {
                        hub_stats: out.hub_stats,
                        hub_seeds: out.hub_seeds,
                        padded_seeds: out.padded_seeds,
                        quality_rejected: out.quality_rejected,
                        iterations: out.outcome.iterations,
                        converged: out.outcome.converged,
                    },
                ))
            }
            Algorithm::Hac { k, linkage } => {
                let opts = HacOptions {
                    target_clusters: *k,
                    linkage: *linkage,
                };
                Ok((
                    hac_obs(&space, &[], &opts, self.exec, &self.obs),
                    AlgorithmDetails::Hac,
                ))
            }
            Algorithm::Bisect { k, trials } => {
                let opts = BisectOptions {
                    target_clusters: *k,
                    trials: *trials,
                    kmeans: KMeansOptions::default(),
                };
                let p = bisecting_kmeans_obs(&space, &opts, &mut rng, self.exec, &self.obs);
                Ok((p, AlgorithmDetails::Bisect))
            }
        }
    }
}

/// Builder for [`Pipeline`]; every knob defaults to the paper's
/// configuration with serial execution.
#[derive(Debug, Clone, Default)]
pub struct PipelineBuilder {
    model: ModelOptions,
    limits: Option<IngestLimits>,
    features: FeatureConfig,
    algorithm: Algorithm,
    exec: ExecPolicy,
    seed: u64,
    anchors: bool,
    obs: Obs,
}

impl PipelineBuilder {
    /// Set the form-page model options (Equation 1).
    pub fn model(mut self, model: ModelOptions) -> Self {
        self.model = model;
        self
    }

    /// Enable hardened ingestion (HTML input only) with these limits.
    pub fn ingest_limits(mut self, limits: IngestLimits) -> Self {
        self.limits = Some(limits);
        self
    }

    /// Set the feature-space configuration (Equation 3).
    pub fn features(mut self, features: FeatureConfig) -> Self {
        self.features = features;
        self
    }

    /// Set the clustering algorithm.
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Set the execution policy. Results are bit-identical for every
    /// policy; only wall-clock changes.
    pub fn exec(mut self, policy: ExecPolicy) -> Self {
        self.exec = policy;
        self
    }

    /// Set the RNG seed used for random seeding and seed padding.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Build anchor-text vectors (§6) when the input is a web graph.
    pub fn anchors(mut self, anchors: bool) -> Self {
        self.anchors = anchors;
        self
    }

    /// Install an observability handle; every stage of the run records
    /// metrics and spans into it. Defaults to [`Obs::disabled`] (near-zero
    /// cost). The clustering result is bit-identical either way.
    pub fn obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Finalize the pipeline.
    pub fn build(self) -> Pipeline {
        Pipeline {
            model: self.model,
            limits: self.limits,
            features: self.features,
            algorithm: self.algorithm,
            exec: self.exec,
            seed: self.seed,
            anchors: self.anchors,
            obs: self.obs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pages() -> Vec<&'static str> {
        vec![
            "<title>Flights</title><p>airfare travel deals vacation</p>\
             <form>departure arrival <input name=a></form>",
            "<p>airfare travel bargain vacation</p>\
             <form>departure return cabin <input name=b></form>",
            "<title>Jobs</title><p>careers employment salary resume</p>\
             <form>keywords category location <input name=c></form>",
            "<title>Hiring</title><p>careers salary openings resume</p>\
             <form>keywords location <input name=d></form>",
        ]
    }

    #[test]
    fn html_kmeans_roundtrip() {
        let out = Pipeline::builder()
            .algorithm(Algorithm::CafcC { k: 2 })
            .seed(3)
            .build()
            .run_html(&pages())
            .expect("CafcC accepts HTML input");
        assert_eq!(out.partition.num_clusters(), 2);
        assert_eq!(out.corpus.len(), 4);
        assert!(out.ingest.is_none());
        assert!(matches!(out.details, AlgorithmDetails::KMeans { .. }));
    }

    #[test]
    fn html_with_limits_reports_ingestion() {
        let mut p = pages();
        p.push(""); // quarantined: no analyzable text
        let out = Pipeline::builder()
            .algorithm(Algorithm::Hac {
                k: 2,
                linkage: Linkage::Average,
            })
            .ingest_limits(IngestLimits::new())
            .build()
            .run_html(&p)
            .expect("HAC accepts HTML input");
        let report = out.ingest.expect("limits configured");
        assert_eq!(report.total(), 5);
        assert_eq!(report.quarantined(), 1);
        assert!(report.is_accounted());
        assert_eq!(out.corpus.len(), 4);
    }

    #[test]
    fn cafc_ch_needs_graph() {
        let err = Pipeline::builder()
            .algorithm(Algorithm::default())
            .build()
            .run_html(&pages())
            .expect_err("CAFC-CH cannot run without backlinks");
        assert_eq!(err, PipelineError::NeedsGraph);
        assert!(err.to_string().contains("run_graph"));
    }

    #[test]
    fn bisect_runs() {
        let out = Pipeline::builder()
            .algorithm(Algorithm::Bisect { k: 2, trials: 3 })
            .seed(5)
            .build()
            .run_html(&pages())
            .expect("bisect accepts HTML input");
        assert_eq!(out.partition.num_clusters(), 2);
        assert!(matches!(out.details, AlgorithmDetails::Bisect));
    }
}
