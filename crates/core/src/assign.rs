//! Nearest-centroid assignment of new form pages — the §5 application:
//! "Once the clusters are built and properly labeled with the domain name,
//! they can be used as the basis to automatically classify new sources."

use crate::space::FormPageSpace;
use cafc_cluster::{ClusterSpace, Partition};

/// Assign each of `items` (indices into the space's corpus) to the most
/// similar non-empty cluster of `partition`. Returns `(item, cluster)`
/// pairs in input order.
///
/// The typical workflow: build one [`crate::FormPageCorpus`] over the
/// already-clustered pages *plus* the new pages (so IDF statistics are
/// shared), cluster the former, then assign the latter.
///
/// A partition with no non-empty cluster offers nothing to assign against;
/// the result is empty rather than a panic (an adversarial corpus can
/// quarantine every clustered page).
pub fn assign_to_clusters(
    space: &FormPageSpace<'_>,
    partition: &Partition,
    items: &[usize],
) -> Vec<(usize, usize)> {
    let centroids: Vec<(usize, <FormPageSpace<'_> as ClusterSpace>::Centroid)> = partition
        .clusters()
        .iter()
        .enumerate()
        .filter(|(_, members)| !members.is_empty())
        .map(|(ci, members)| (ci, space.centroid(members)))
        .collect();
    if centroids.is_empty() {
        return Vec::new();
    }
    items
        .iter()
        .map(|&item| {
            let best = centroids
                .iter()
                .max_by(|(_, a), (_, b)| {
                    space
                        .similarity(a, item)
                        .partial_cmp(&space.similarity(b, item))
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .map(|(ci, _)| *ci)
                .unwrap_or(centroids[0].0);
            (item, best)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{FormPageCorpus, ModelOptions};
    use crate::space::{FeatureConfig, FormPageSpace};

    #[test]
    fn assigns_new_pages_to_matching_cluster() {
        // Items 0-1: airfare; 2-3: jobs; 4: a NEW airfare page; 5: a NEW
        // jobs page. Cluster {0,1} and {2,3}, then assign 4 and 5.
        let pages = [
            "<p>airfare travel flights deals</p><form>departure <input name=a></form>",
            "<p>airfare flights vacation airline</p><form>arrival <input name=b></form>",
            "<p>careers employment salary</p><form>keywords <input name=c></form>",
            "<p>careers hiring openings resume</p><form>category <input name=d></form>",
            "<p>flights airfare airline travel</p><form>departure <input name=e></form>",
            "<p>employment resume salary careers</p><form>keywords <input name=f></form>",
        ];
        let corpus = FormPageCorpus::from_html(pages.iter().copied(), &ModelOptions::default());
        let space = FormPageSpace::new(&corpus, FeatureConfig::combined());
        let partition = Partition::new(vec![vec![0, 1], vec![2, 3]], 6);
        let assigned = assign_to_clusters(&space, &partition, &[4, 5]);
        assert_eq!(assigned, vec![(4, 0), (5, 1)]);
    }

    #[test]
    fn empty_clusters_never_chosen() {
        let pages = [
            "<p>airfare flights</p>",
            "<p>airfare travel</p>",
            "<p>flights airline</p>",
        ];
        let corpus = FormPageCorpus::from_html(pages.iter().copied(), &ModelOptions::default());
        let space = FormPageSpace::new(&corpus, FeatureConfig::PcOnly);
        let partition = Partition::new(vec![vec![], vec![0, 1]], 3);
        let assigned = assign_to_clusters(&space, &partition, &[2]);
        assert_eq!(assigned, vec![(2, 1)]);
    }

    #[test]
    fn empty_partition_assigns_nothing() {
        let pages = ["<p>x y z</p>"];
        let corpus = FormPageCorpus::from_html(pages.iter().copied(), &ModelOptions::default());
        let space = FormPageSpace::new(&corpus, FeatureConfig::PcOnly);
        let partition = Partition::new(vec![vec![]], 1);
        assert!(assign_to_clusters(&space, &partition, &[0]).is_empty());
    }
}
