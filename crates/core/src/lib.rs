//! # cafc — Context-Aware Form Clustering
//!
//! A complete implementation of **"Organizing Hidden-Web Databases by
//! Clustering Visible Web Documents"** (Barbosa, Freire & Silva, ICDE
//! 2007): given a heterogeneous set of searchable Web forms — the entry
//! points to hidden-web databases — group them by the database domain they
//! front, using only *visible*, automatically extractable context.
//!
//! ## The pieces
//!
//! * [`FormPageCorpus`] — the form-page model `FP(PC, FC)` (§2.1): each
//!   page as two TF-IDF vectors, page contents and form contents, with
//!   location-aware term weights ([`LocationWeights`], Equation 1).
//! * [`FormPageSpace`] + [`FeatureConfig`] — the Equation-3 similarity
//!   (per-space cosines, weighted average) as a clustering space.
//! * [`cafc_c`] — Algorithm 1: k-means from random seeds with the paper's
//!   <10 %-moved stopping rule.
//! * [`cafc_ch`] — Algorithms 2–3: hub clusters from shared backlinks
//!   (intra-site hubs eliminated, small clusters pruned), greedy
//!   farthest-first selection of `k` seed clusters, then k-means. Hub
//!   evidence *reinforces* content evidence instead of being mixed into a
//!   single weighted measure.
//! * [`assign_to_clusters`] — the §5 application: classify new sources
//!   against an existing clustering.
//! * [`baseline::MixedSimilaritySpace`] — the design the paper rejects (one
//!   α-weighted text+link similarity), implemented so the architectural
//!   claim is benchmarkable.
//!
//! ## Quickstart
//!
//! ```
//! use cafc::{cafc_ch, CafcChConfig, FeatureConfig, FormPageCorpus, FormPageSpace, ModelOptions};
//! use cafc_corpus::{generate, CorpusConfig};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! // A synthetic deep web (the offline stand-in for the paper's corpus).
//! let web = generate(&CorpusConfig::small(7));
//! let targets = web.form_page_ids();
//!
//! // Build the form-page model and cluster with CAFC-CH, k = 8.
//! let corpus = FormPageCorpus::from_graph(&web.graph, &targets, &ModelOptions::default());
//! let space = FormPageSpace::new(&corpus, FeatureConfig::combined());
//! let mut rng = StdRng::seed_from_u64(1);
//! let result = cafc_ch(&web.graph, &targets, &space, &CafcChConfig::paper_default(8), &mut rng);
//!
//! // Evaluate against the generator's gold labels.
//! let entropy = cafc_eval::entropy(
//!     result.outcome.partition.clusters(),
//!     &web.labels(),
//!     cafc_eval::EntropyBase::Two,
//! );
//! assert!(entropy < 1.5, "hub-seeded clustering should be far from random");
//! ```

#![warn(missing_docs)]

pub mod algorithms;
pub mod assign;
pub mod baseline;
pub mod incremental;
pub mod ingest;
pub mod model;
pub mod space;

pub use algorithms::{
    cafc_c, cafc_ch, hub_cluster_quality, select_hub_clusters, CafcChConfig, CafcChOutcome,
};
pub use assign::assign_to_clusters;
pub use incremental::IncrementalClusters;
pub use ingest::{DegradedReason, IngestError, IngestLimits, IngestReport, PageOutcome};
pub use model::{FormPageCorpus, LocationWeights, ModelOptions};
pub use space::{FeatureConfig, FormPageSpace, MultiCentroid};

// Re-export the pieces callers almost always need alongside the core API.
pub use cafc_cluster::{HacOptions, KMeansOptions, Linkage, Partition};
pub use cafc_vsm::{IdfScheme, TfScheme};
pub use cafc_webgraph::{HubClusterOptions, HubStats};
