//! # cafc — Context-Aware Form Clustering
//!
//! A complete implementation of **"Organizing Hidden-Web Databases by
//! Clustering Visible Web Documents"** (Barbosa, Freire & Silva, ICDE
//! 2007): given a heterogeneous set of searchable Web forms — the entry
//! points to hidden-web databases — group them by the database domain they
//! front, using only *visible*, automatically extractable context.
//!
//! ## The pieces
//!
//! * [`FormPageCorpus`] — the form-page model `FP(PC, FC)` (§2.1): each
//!   page as two TF-IDF vectors, page contents and form contents, with
//!   location-aware term weights ([`LocationWeights`], Equation 1).
//! * [`FormPageSpace`] + [`FeatureConfig`] — the Equation-3 similarity
//!   (per-space cosines, weighted average) as a clustering space.
//! * [`cafc_c`] — Algorithm 1: k-means from random seeds with the paper's
//!   <10 %-moved stopping rule.
//! * [`cafc_ch`] — Algorithms 2–3: hub clusters from shared backlinks
//!   (intra-site hubs eliminated, small clusters pruned), greedy
//!   farthest-first selection of `k` seed clusters, then k-means. Hub
//!   evidence *reinforces* content evidence instead of being mixed into a
//!   single weighted measure.
//! * [`assign_to_clusters`] — the §5 application: classify new sources
//!   against an existing clustering.
//! * [`baseline::MixedSimilaritySpace`] — the design the paper rejects (one
//!   α-weighted text+link similarity), implemented so the architectural
//!   claim is benchmarkable.
//!
//! ## Quickstart
//!
//! ```
//! use cafc::prelude::*;
//! use cafc_corpus::{generate, CorpusConfig};
//!
//! // A synthetic deep web (the offline stand-in for the paper's corpus).
//! let web = generate(&CorpusConfig::small(7));
//! let targets = web.form_page_ids();
//!
//! // Model construction, CAFC-CH with k = 8, and parallel execution, all
//! // behind one builder. Results are bit-identical for every ExecPolicy.
//! let outcome = Pipeline::builder()
//!     .algorithm(Algorithm::CafcCh(CafcChConfig::paper_default(8)))
//!     .exec(ExecPolicy::Auto)
//!     .seed(1)
//!     .build()
//!     .run_graph(&web.graph, &targets)
//!     .expect("graph input satisfies CAFC-CH");
//!
//! // Evaluate against the generator's gold labels.
//! let entropy = cafc_eval::entropy(
//!     outcome.partition.clusters(),
//!     &web.labels(),
//!     cafc_eval::EntropyBase::Two,
//! );
//! assert!(entropy < 1.5, "hub-seeded clustering should be far from random");
//! ```

#![warn(missing_docs)]

pub mod algorithms;
pub mod assign;
pub mod baseline;
pub mod bench;
pub mod incremental;
pub mod ingest;
pub mod model;
pub mod pipeline;
pub mod resume;
pub mod search;
pub mod space;
pub mod stream;

/// The deterministic execution layer ([`cafc_exec`]), re-exported: scoped
/// thread pool, [`exec::ExecPolicy`], and the order-preserving `par_*`
/// primitives the whole pipeline is built on.
pub use cafc_exec as exec;

/// The observability layer ([`cafc_obs`]), re-exported: the [`Obs`] handle
/// threaded through every pipeline stage, plus its clocks, configuration
/// and snapshot types.
pub use cafc_obs as obs;

pub use algorithms::{
    cafc_c, cafc_c_exec, cafc_c_obs, cafc_ch, cafc_ch_exec, cafc_ch_obs, hub_cluster_quality,
    hub_cluster_quality_exec, select_hub_clusters, select_hub_clusters_exec,
    select_hub_clusters_obs, CafcChConfig, CafcChOutcome,
};
pub use assign::assign_to_clusters;
pub use bench::{run_bench, BenchConfig, BenchReport, BenchStage};
pub use exec::ExecPolicy;
pub use incremental::IncrementalClusters;
pub use ingest::{DegradedReason, IngestError, IngestLimits, IngestReport, PageOutcome};
pub use model::{FormPageCorpus, LocationWeights, ModelOptions};
pub use pipeline::{
    Algorithm, AlgorithmDetails, Pipeline, PipelineBuilder, PipelineError, PipelineOutcome,
};
pub use search::{
    SearchAlgorithm, SearchConfig, SearchIndex, SearchOutcome, SearchPipeline,
    SearchPipelineBuilder,
};
pub use space::{FeatureConfig, FormPageSpace, MultiCentroid};
pub use stream::{Arrival, StreamConfig, StreamCorpus};

// Re-export the pieces callers almost always need alongside the core API.
pub use cafc_cluster::{HacOptions, KMeansOptions, Linkage, Partition};
pub use cafc_index::{Bm25Params, Hit, InvertedIndex, ScanStats};
pub use cafc_obs::{ManualClock, MonotonicClock, Obs, ObsConfig, Snapshot};
pub use cafc_vsm::{IdfScheme, TfScheme};
pub use cafc_webgraph::{HubClusterOptions, HubStats};

/// One-stop imports for the redesigned API surface.
///
/// `use cafc::prelude::*;` brings in the [`Pipeline`] builder, the
/// [`Algorithm`] and [`ExecPolicy`] enums, every configuration type they
/// consume, and the outcome types a run produces.
pub mod prelude {
    pub use crate::exec::ExecPolicy;
    pub use crate::pipeline::{
        Algorithm, AlgorithmDetails, Pipeline, PipelineBuilder, PipelineError, PipelineOutcome,
    };
    pub use crate::search::{
        SearchAlgorithm, SearchConfig, SearchIndex, SearchOutcome, SearchPipeline,
        SearchPipelineBuilder,
    };
    pub use crate::{
        CafcChConfig, FeatureConfig, FormPageCorpus, FormPageSpace, IngestLimits, IngestReport,
        KMeansOptions, Linkage, LocationWeights, ModelOptions, Obs, Partition,
    };
}
