//! Crash-safe checkpointing for the ingestion stage.
//!
//! [`FormPageCorpus::from_html_ingest_resumable`] processes pages in
//! batches — the store's `checkpoint_every`, rounded up to a multiple of
//! the chunk size so a resumed run reproduces the exact chunk boundaries
//! (and therefore term-id assignment order) of an uninterrupted one —
//! and snapshots the complete accumulated state after each batch: the
//! shared term dictionary in id order, every kept page's lossless PC/FC
//! count entries (zero-weight entries included, so document frequencies
//! survive the round trip), and the full [`IngestReport`]. TF-IDF is
//! applied only once all pages are in, exactly as in the plain path, so
//! the final corpus is bit-identical.
//!
//! The snapshot embeds a fingerprint chained over every input page's
//! content hash; resuming against different inputs is a typed
//! [`StoreError::FingerprintMismatch`], never a silently wrong corpus.

use crate::ingest::{DegradedReason, IngestError, IngestLimits, IngestReport, PageOutcome};
use crate::model::{
    emit_ingest_metrics, ingest_page, FormPageCorpus, IngestMerge, ModelOptions, PAGE_CHUNK,
};
use cafc_exec::{par_chunks_obs, ExecPolicy};
use cafc_obs::Obs;
use cafc_store::{fnv1a64, ByteReader, ByteWriter, Store, StoreError};
use cafc_text::{TermDict, TermId};
use cafc_vsm::CountsBuilder;

/// The store stage ingestion state lives under.
const STAGE: &str = "ingest";
/// Journal record: run fingerprint (written once, at stage start).
const KIND_FINGERPRINT: u8 = 0;
/// Journal record: per-batch progress audit (pages done, kept, quarantined).
const KIND_BATCH: u8 = 1;

/// The accumulated mid-run state the snapshot persists.
struct IngestState {
    dict: TermDict,
    pc_counts: Vec<CountsBuilder>,
    fc_counts: Vec<CountsBuilder>,
    report: IngestReport,
    pages_done: usize,
}

impl IngestState {
    fn fresh() -> IngestState {
        IngestState {
            dict: TermDict::new(),
            pc_counts: Vec::new(),
            fc_counts: Vec::new(),
            report: IngestReport::default(),
            pages_done: 0,
        }
    }
}

fn put_counts(w: &mut ByteWriter, counts: &CountsBuilder) {
    let entries = counts.entries();
    w.put_usize(entries.len());
    for (term, weight) in entries {
        w.put_u32(term.0);
        w.put_f64(weight);
    }
}

fn get_counts(r: &mut ByteReader<'_>) -> Result<CountsBuilder, StoreError> {
    let n = r.get_usize()?;
    let mut entries = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let term = TermId(r.get_u32()?);
        let weight = r.get_f64()?;
        entries.push((term, weight));
    }
    Ok(CountsBuilder::from_entries(&entries))
}

fn put_outcome(w: &mut ByteWriter, outcome: &PageOutcome) {
    match outcome {
        PageOutcome::Ok => w.put_u8(0),
        PageOutcome::Degraded { reasons } => {
            w.put_u8(1);
            w.put_usize(reasons.len());
            for reason in reasons {
                // Index into DegradedReason::ALL: stable as long as new
                // reasons append (the snapshot version gates layout changes).
                let idx = DegradedReason::ALL.iter().position(|r| r == reason);
                w.put_u8(idx.unwrap_or(u8::MAX as usize) as u8);
            }
        }
        PageOutcome::Quarantined { error } => {
            w.put_u8(2);
            match error {
                IngestError::TooLarge { bytes, limit } => {
                    w.put_u8(0);
                    w.put_usize(*bytes);
                    w.put_usize(*limit);
                }
                IngestError::EmptyDocument => w.put_u8(1),
                IngestError::BudgetExhausted { needed, budget } => {
                    w.put_u8(2);
                    w.put_usize(*needed);
                    w.put_usize(*budget);
                }
            }
        }
    }
}

fn get_outcome(r: &mut ByteReader<'_>, path: &str) -> Result<PageOutcome, StoreError> {
    let corrupt = |detail: String| StoreError::Corrupt {
        path: path.to_owned(),
        detail,
    };
    match r.get_u8()? {
        0 => Ok(PageOutcome::Ok),
        1 => {
            let n = r.get_usize()?;
            let mut reasons = Vec::with_capacity(n.min(DegradedReason::ALL.len()));
            for _ in 0..n {
                let idx = r.get_u8()? as usize;
                let reason = DegradedReason::ALL
                    .get(idx)
                    .copied()
                    .ok_or_else(|| corrupt(format!("unknown degraded-reason index {idx}")))?;
                reasons.push(reason);
            }
            Ok(PageOutcome::Degraded { reasons })
        }
        2 => {
            let error = match r.get_u8()? {
                0 => IngestError::TooLarge {
                    bytes: r.get_usize()?,
                    limit: r.get_usize()?,
                },
                1 => IngestError::EmptyDocument,
                2 => IngestError::BudgetExhausted {
                    needed: r.get_usize()?,
                    budget: r.get_usize()?,
                },
                other => return Err(corrupt(format!("unknown ingest-error code {other}"))),
            };
            Ok(PageOutcome::Quarantined { error })
        }
        other => Err(corrupt(format!("unknown page-outcome tag {other}"))),
    }
}

fn encode_state(merge: &IngestMerge, pages_done: usize, fingerprint: u64) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u64(fingerprint);
    w.put_usize(pages_done);
    w.put_usize(merge.dict.len());
    for (_, term) in merge.dict.iter() {
        w.put_str(term);
    }
    for counts in [&merge.pc_counts, &merge.fc_counts] {
        w.put_usize(counts.len());
        for c in counts.iter() {
            put_counts(&mut w, c);
        }
    }
    w.put_usize(merge.report.outcomes.len());
    for outcome in &merge.report.outcomes {
        put_outcome(&mut w, outcome);
    }
    w.put_usize(merge.report.kept.len());
    for &k in &merge.report.kept {
        w.put_usize(k);
    }
    w.into_bytes()
}

fn decode_state(payload: &[u8], fingerprint: u64) -> Result<IngestState, StoreError> {
    let path = "ingest.snap";
    let mut r = ByteReader::new(payload, path);
    if r.get_u64()? != fingerprint {
        return Err(StoreError::FingerprintMismatch {
            stage: STAGE.to_owned(),
        });
    }
    let pages_done = r.get_usize()?;
    let n_terms = r.get_usize()?;
    let mut dict = TermDict::new();
    for _ in 0..n_terms {
        let term = r.get_str()?.to_owned();
        dict.intern(&term);
    }
    let mut both = Vec::with_capacity(2);
    for _ in 0..2 {
        let n = r.get_usize()?;
        let mut counts = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            counts.push(get_counts(&mut r)?);
        }
        both.push(counts);
    }
    let fc_counts = both.pop().unwrap_or_default();
    let pc_counts = both.pop().unwrap_or_default();
    let n_outcomes = r.get_usize()?;
    let mut outcomes = Vec::with_capacity(n_outcomes.min(1 << 20));
    for _ in 0..n_outcomes {
        outcomes.push(get_outcome(&mut r, path)?);
    }
    let n_kept = r.get_usize()?;
    let mut kept = Vec::with_capacity(n_kept.min(1 << 20));
    for _ in 0..n_kept {
        kept.push(r.get_usize()?);
    }
    Ok(IngestState {
        dict,
        pc_counts,
        fc_counts,
        report: IngestReport { outcomes, kept },
        pages_done,
    })
}

/// Chained hash over the page count and every page's content: the run's
/// identity for resume validation.
fn run_fingerprint(pages: &[&str], opts: &ModelOptions, limits: &IngestLimits) -> u64 {
    let mut w = ByteWriter::new();
    w.put_usize(pages.len());
    for &html in pages {
        w.put_u64(fnv1a64(html.as_bytes()));
    }
    w.put_f64(opts.weights.title);
    w.put_f64(opts.weights.heading);
    w.put_f64(opts.weights.anchor);
    w.put_f64(opts.weights.body);
    w.put_f64(opts.weights.form_text);
    w.put_f64(opts.weights.form_option);
    w.put_f64(opts.weights.form_value);
    w.put_usize(limits.hard_max_bytes);
    w.put_usize(limits.soft_max_bytes);
    w.put_usize(limits.max_terms);
    // The corpus budget changes which pages are kept, so it is part of the
    // run's identity. `shard_pages` deliberately is not: the built corpus
    // is bit-identical under any shard size (DESIGN.md §17), so resuming
    // under a different one is safe.
    w.put_usize(limits.max_corpus_bytes);
    fnv1a64(&w.into_bytes())
}

impl FormPageCorpus {
    /// [`FormPageCorpus::from_html_ingest_obs`] with durable checkpoints:
    /// pages are ingested in `store.config().checkpoint_every`-sized
    /// batches (rounded up to whole vectorization chunks), the accumulated
    /// dictionary/counts/report are snapshotted after each batch, and —
    /// when `resume` is true — ingestion restarts from the last durable
    /// batch boundary. The resulting corpus and [`IngestReport`] are
    /// bit-identical to an uninterrupted run; resuming against different
    /// pages, weights or limits is refused with
    /// [`StoreError::FingerprintMismatch`].
    #[allow(clippy::too_many_arguments)]
    pub fn from_html_ingest_resumable<'a, I>(
        pages: I,
        opts: &ModelOptions,
        limits: &IngestLimits,
        policy: ExecPolicy,
        obs: &Obs,
        store: &mut Store,
        resume: bool,
    ) -> Result<(FormPageCorpus, IngestReport), StoreError>
    where
        I: IntoIterator<Item = &'a str>,
    {
        let pages: Vec<&str> = pages.into_iter().collect();
        let fingerprint = run_fingerprint(&pages, opts, limits);
        let every = usize::try_from(store.config().checkpoint_every)
            .unwrap_or(usize::MAX)
            .max(1);
        // Round up to whole chunks so batch boundaries never split a chunk:
        // identical chunking -> identical term-id assignment order.
        let batch = every.div_ceil(PAGE_CHUNK).max(1).saturating_mul(PAGE_CHUNK);

        let state = if resume {
            match store.load_snapshot(STAGE)? {
                Some(snap) => {
                    let state = decode_state(&snap.payload, fingerprint)?;
                    if state.pages_done > pages.len() {
                        return Err(StoreError::FingerprintMismatch {
                            stage: STAGE.to_owned(),
                        });
                    }
                    state
                }
                None => {
                    // Nothing durable: a --resume against an empty
                    // directory is a fresh start.
                    store.journal_append(STAGE, KIND_FINGERPRINT, &{
                        let mut w = ByteWriter::new();
                        w.put_u64(fingerprint);
                        w.into_bytes()
                    })?;
                    IngestState::fresh()
                }
            }
        } else {
            store.reset_stage(STAGE)?;
            store.journal_append(STAGE, KIND_FINGERPRINT, &{
                let mut w = ByteWriter::new();
                w.put_u64(fingerprint);
                w.into_bytes()
            })?;
            IngestState::fresh()
        };

        let ingest_span = obs.span("ingest");
        // The shared merge enforces the corpus budget exactly like the
        // non-resumable paths; `used_bytes` is recomputed from the kept
        // counts, so a resumed run repeats the budget decisions of an
        // uninterrupted one.
        let mut pages_done = state.pages_done;
        let mut merge = IngestMerge::from_parts(
            state.dict,
            state.pc_counts,
            state.fc_counts,
            state.report,
            limits,
        );
        while pages_done < pages.len() {
            let end = (pages_done + batch).min(pages.len());
            let offset = pages_done;
            let chunks = par_chunks_obs(policy, end - offset, PAGE_CHUNK, obs, "ingest", |range| {
                let mut dict = TermDict::new();
                let mut term_buf: Vec<TermId> = Vec::new();
                let outcomes: Vec<_> = pages[offset + range.start..offset + range.end]
                    .iter()
                    .map(|&html| ingest_page(html, opts, limits, &mut dict, &mut term_buf, obs))
                    .collect();
                (dict, outcomes)
            });
            for (local_dict, outcomes) in chunks {
                merge.absorb(local_dict, outcomes);
            }
            pages_done = end;
            store.snapshot(
                STAGE,
                pages_done as u64,
                &encode_state(&merge, pages_done, fingerprint),
            )?;
            let mut audit = ByteWriter::new();
            audit.put_usize(pages_done);
            audit.put_usize(merge.report.kept.len());
            audit.put_usize(merge.report.quarantined());
            store.journal_append(STAGE, KIND_BATCH, &audit.into_bytes())?;
        }
        drop(ingest_span);

        emit_ingest_metrics(&merge.report, obs);
        let corpus = Self::finish(
            merge.dict,
            merge.pc_counts,
            merge.fc_counts,
            None,
            opts,
            policy,
            obs,
        );
        Ok((corpus, merge.report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cafc_store::{ChaosFs, FaultKind, FaultPlan, StdFs, StoreConfig};

    fn pages() -> Vec<String> {
        (0..40)
            .map(|i| {
                if i % 13 == 7 {
                    // An all-markup page: quarantined as EmptyDocument.
                    "<div><span></span></div>".to_owned()
                } else {
                    format!(
                        "<html><title>books {i}</title><body>novel author isbn {i} \
                         <form><input name=q><option>fiction {i}</option></form></body></html>"
                    )
                }
            })
            .collect()
    }

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("cafc-ingest-resume-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn assert_corpora_identical(
        a: &(FormPageCorpus, IngestReport),
        b: &(FormPageCorpus, IngestReport),
    ) {
        assert_eq!(a.1, b.1, "reports differ");
        assert_eq!(a.0.len(), b.0.len());
        assert_eq!(a.0.dict.len(), b.0.dict.len());
        for i in 0..a.0.len() {
            assert_eq!(a.0.pc[i], b.0.pc[i], "pc vector {i}");
            assert_eq!(a.0.fc[i], b.0.fc[i], "fc vector {i}");
        }
    }

    #[test]
    fn checkpointed_ingest_matches_plain_ingest() {
        let pages = pages();
        let opts = ModelOptions::default();
        let limits = IngestLimits::default();
        let baseline =
            FormPageCorpus::from_html_ingest(pages.iter().map(String::as_str), &opts, &limits);

        let dir = tmp_dir("clean");
        let mut store = Store::open(
            &dir,
            StoreConfig::new().with_checkpoint_every(10),
            Obs::disabled(),
        )
        .expect("open");
        let resumable = FormPageCorpus::from_html_ingest_resumable(
            pages.iter().map(String::as_str),
            &opts,
            &limits,
            ExecPolicy::Serial,
            &Obs::disabled(),
            &mut store,
            false,
        )
        .expect("resumable ingest");
        assert_corpora_identical(&baseline, &resumable);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_and_resume_is_bit_identical() {
        let pages = pages();
        let opts = ModelOptions::default();
        let limits = IngestLimits::default();
        let baseline =
            FormPageCorpus::from_html_ingest(pages.iter().map(String::as_str), &opts, &limits);

        let dir = tmp_dir("crash");
        for at in [1u64, 3, 5, 8] {
            let _ = std::fs::remove_dir_all(&dir);
            let (chaos, _ctl) = ChaosFs::controlled(
                StdFs,
                FaultPlan::AtOp {
                    op: at,
                    kind: FaultKind::TornWrite,
                },
            );
            let mut store = Store::open_with_vfs(
                Box::new(chaos),
                &dir,
                StoreConfig::new().with_checkpoint_every(10),
                Obs::disabled(),
            )
            .expect("open");
            let crashed = FormPageCorpus::from_html_ingest_resumable(
                pages.iter().map(String::as_str),
                &opts,
                &limits,
                ExecPolicy::Serial,
                &Obs::disabled(),
                &mut store,
                false,
            );
            if let Ok(done) = crashed {
                assert_corpora_identical(&baseline, &done);
                continue;
            }
            let mut store = Store::open(
                &dir,
                StoreConfig::new().with_checkpoint_every(10),
                Obs::disabled(),
            )
            .expect("reopen");
            let resumed = FormPageCorpus::from_html_ingest_resumable(
                pages.iter().map(String::as_str),
                &opts,
                &limits,
                ExecPolicy::Serial,
                &Obs::disabled(),
                &mut store,
                true,
            )
            .expect("resume");
            assert_corpora_identical(&baseline, &resumed);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_with_different_pages_is_refused() {
        let pages = pages();
        let opts = ModelOptions::default();
        let limits = IngestLimits::default();
        let dir = tmp_dir("fp");
        let mut store = Store::open(&dir, StoreConfig::new(), Obs::disabled()).expect("open");
        FormPageCorpus::from_html_ingest_resumable(
            pages.iter().map(String::as_str),
            &opts,
            &limits,
            ExecPolicy::Serial,
            &Obs::disabled(),
            &mut store,
            false,
        )
        .expect("first run");
        let err = FormPageCorpus::from_html_ingest_resumable(
            pages.iter().rev().map(String::as_str),
            &opts,
            &limits,
            ExecPolicy::Serial,
            &Obs::disabled(),
            &mut store,
            true,
        )
        .expect_err("different pages must refuse to resume");
        assert!(
            matches!(err, StoreError::FingerprintMismatch { .. }),
            "{err}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
