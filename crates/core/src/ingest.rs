//! The hardened ingestion layer: typed outcomes for every page fed to the
//! model, instead of panics or silent misfeatures.
//!
//! CAFC clusters *arbitrary* form pages scraped off the open web; the
//! paper's 454-page corpus is exactly the kind of messy HTML (unterminated
//! tags, bogus entities, nested forms) that breaks naive pipelines. This
//! module defines the contract the pipeline keeps on hostile input:
//!
//! * **no input byte sequence panics** — structural hazards are capped
//!   (parse depth, node count, term budget) or rejected up front (hard
//!   size limit);
//! * **every page is accounted for** — each input page gets exactly one
//!   [`PageOutcome`]: `Ok`, `Degraded` (kept, with the applied fallbacks
//!   listed), or `Quarantined` (excluded, with the reason). The identity
//!   `ok + degraded + quarantined == total` always holds; see
//!   [`IngestReport::is_accounted`].
//!
//! The signals are produced where the hazard lives — `cafc_html` reports
//! parse caps and control-character stripping, `cafc_text` reports term
//! budget trims, `cafc_vsm` drops non-finite weights — and mapped onto
//! this shared taxonomy here. DESIGN.md §8 documents the full matrix.

use std::fmt;

/// Why a page was rejected outright (excluded from the corpus).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestError {
    /// The raw document exceeds the hard size limit; parsing it would be
    /// a resource attack, not ingestion.
    TooLarge {
        /// Actual size of the input.
        bytes: usize,
        /// The configured hard limit it exceeded.
        limit: usize,
    },
    /// No analyzable text survived parsing — an all-markup, all-control or
    /// empty document vectorizes to zero everywhere and would only add
    /// degenerate points to the cluster space.
    EmptyDocument,
    /// Keeping this page's vectors would push the corpus past its
    /// configured memory budget ([`IngestLimits::max_corpus_bytes`]). The
    /// page is excluded so a 10^6-page build degrades predictably — later
    /// pages quarantined, accounting intact — instead of OOMing.
    BudgetExhausted {
        /// Estimated bytes this page's kept vectors would have added.
        needed: usize,
        /// The configured corpus budget that was exhausted.
        budget: usize,
    },
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::TooLarge { bytes, limit } => {
                write!(f, "document of {bytes} bytes exceeds hard limit {limit}")
            }
            IngestError::EmptyDocument => write!(f, "no analyzable text"),
            IngestError::BudgetExhausted { needed, budget } => {
                write!(
                    f,
                    "corpus memory budget exhausted: page needs {needed} bytes \
                     against budget {budget}"
                )
            }
        }
    }
}

/// A fallback the pipeline applied while keeping the page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DegradedReason {
    /// Input exceeded the soft size limit and was truncated to it.
    InputTruncated,
    /// Disallowed control characters were stripped before tokenizing.
    ControlCharsStripped,
    /// Element nesting hit the parser's depth cap; deeper elements were
    /// reparented at the cap.
    DepthCapped,
    /// The per-page term budget cut text analysis short.
    TermBudgetExceeded,
    /// The page has no `<title>` text, so the model's strongest location
    /// signal is absent.
    MissingTitle,
    /// The page contributed no form-content terms; its FC vector is empty
    /// and only PC similarity can place it.
    NoFormContent,
}

impl DegradedReason {
    /// All reasons, for exhaustive reporting tables.
    pub const ALL: [DegradedReason; 6] = [
        DegradedReason::InputTruncated,
        DegradedReason::ControlCharsStripped,
        DegradedReason::DepthCapped,
        DegradedReason::TermBudgetExceeded,
        DegradedReason::MissingTitle,
        DegradedReason::NoFormContent,
    ];

    /// Stable lowercase label for reports.
    pub fn label(self) -> &'static str {
        match self {
            DegradedReason::InputTruncated => "input-truncated",
            DegradedReason::ControlCharsStripped => "control-chars-stripped",
            DegradedReason::DepthCapped => "depth-capped",
            DegradedReason::TermBudgetExceeded => "term-budget-exceeded",
            DegradedReason::MissingTitle => "missing-title",
            DegradedReason::NoFormContent => "no-form-content",
        }
    }
}

/// Per-page ingestion outcome.
#[derive(Debug, Clone, PartialEq)]
pub enum PageOutcome {
    /// Vectorized cleanly.
    Ok,
    /// Kept, but one or more fallbacks applied (sorted, deduplicated).
    Degraded {
        /// The fallbacks that were applied.
        reasons: Vec<DegradedReason>,
    },
    /// Excluded from the corpus.
    Quarantined {
        /// Why the page was rejected.
        error: IngestError,
    },
}

impl PageOutcome {
    /// True unless quarantined.
    pub fn is_kept(&self) -> bool {
        !matches!(self, PageOutcome::Quarantined { .. })
    }
}

/// Structural limits applied during ingestion.
///
/// Construct with [`IngestLimits::default`] plus the chainable `with_*`
/// setters; the struct is `#[non_exhaustive]` so future limits are not
/// breaking changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct IngestLimits {
    /// Documents larger than this are quarantined unparsed.
    pub hard_max_bytes: usize,
    /// Documents larger than this (but under the hard limit) are truncated
    /// to it and marked degraded.
    pub soft_max_bytes: usize,
    /// Maximum analyzed terms per page across all text runs; the rest of
    /// the page is ignored and the page marked degraded.
    pub max_terms: usize,
    /// Pages per ingestion work unit (shard). Fixed up front — never
    /// derived from the thread count — so chunk boundaries are identical
    /// under every execution policy; and because the shard merge re-bases
    /// term ids in input order, the built corpus is bit-identical under
    /// **any** value of this knob (the shard-merge invariance contract,
    /// DESIGN.md §17). Larger shards amortize per-chunk overhead at
    /// 10^5–10^6 pages; clamped to ≥ 1 at use sites.
    pub shard_pages: usize,
    /// Memory budget in bytes for the kept per-page vector entries
    /// (estimated at 16 bytes per distinct PC/FC term; the shared term
    /// dictionary is excluded — it is needed either way for term-id
    /// stability). Pages whose vectors would exceed the budget are
    /// quarantined with [`IngestError::BudgetExhausted`], in input order,
    /// so an oversized build degrades predictably instead of OOMing.
    /// Default: unlimited.
    pub max_corpus_bytes: usize,
}

impl Default for IngestLimits {
    fn default() -> Self {
        IngestLimits {
            hard_max_bytes: 16 * 1024 * 1024,
            soft_max_bytes: 1024 * 1024,
            max_terms: 200_000,
            shard_pages: 16,
            max_corpus_bytes: usize::MAX,
        }
    }
}

impl IngestLimits {
    /// The default limits (same as `Default`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the hard size limit above which documents are quarantined.
    pub fn with_hard_max_bytes(mut self, bytes: usize) -> Self {
        self.hard_max_bytes = bytes;
        self
    }

    /// Set the soft size limit above which documents are truncated.
    pub fn with_soft_max_bytes(mut self, bytes: usize) -> Self {
        self.soft_max_bytes = bytes;
        self
    }

    /// Set the per-page analyzed-term budget.
    pub fn with_max_terms(mut self, terms: usize) -> Self {
        self.max_terms = terms;
        self
    }

    /// Set the pages-per-shard work-unit size (output-invariant; a pure
    /// throughput knob).
    pub fn with_shard_pages(mut self, pages: usize) -> Self {
        self.shard_pages = pages;
        self
    }

    /// Set the corpus memory budget in bytes.
    pub fn with_max_corpus_bytes(mut self, bytes: usize) -> Self {
        self.max_corpus_bytes = bytes;
        self
    }
}

/// The accounting record of one ingestion run: an outcome per input page,
/// plus the mapping from corpus index to input index.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IngestReport {
    /// One outcome per input page, in input order.
    pub outcomes: Vec<PageOutcome>,
    /// For each page of the built corpus, the index of the input page it
    /// came from (quarantined pages have no corpus entry).
    pub kept: Vec<usize>,
}

impl IngestReport {
    /// Number of input pages.
    pub fn total(&self) -> usize {
        self.outcomes.len()
    }

    /// Number of pages vectorized without fallbacks.
    pub fn ok(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o, PageOutcome::Ok))
            .count()
    }

    /// Number of pages kept with fallbacks applied.
    pub fn degraded(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o, PageOutcome::Degraded { .. }))
            .count()
    }

    /// Number of pages excluded from the corpus.
    pub fn quarantined(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o, PageOutcome::Quarantined { .. }))
            .count()
    }

    /// How often each degradation reason occurred, in [`DegradedReason::ALL`]
    /// order.
    pub fn reason_counts(&self) -> Vec<(DegradedReason, usize)> {
        DegradedReason::ALL
            .iter()
            .map(|&r| {
                let n = self
                    .outcomes
                    .iter()
                    .filter(
                        |o| matches!(o, PageOutcome::Degraded { reasons } if reasons.contains(&r)),
                    )
                    .count();
                (r, n)
            })
            .collect()
    }

    /// The accounting identity: every input page has exactly one outcome
    /// and every kept page has exactly one corpus entry.
    pub fn is_accounted(&self) -> bool {
        let kept = self.ok() + self.degraded();
        self.ok() + self.degraded() + self.quarantined() == self.total() && self.kept.len() == kept
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_counts_and_identity() {
        let report = IngestReport {
            outcomes: vec![
                PageOutcome::Ok,
                PageOutcome::Degraded {
                    reasons: vec![DegradedReason::MissingTitle],
                },
                PageOutcome::Quarantined {
                    error: IngestError::EmptyDocument,
                },
                PageOutcome::Ok,
            ],
            kept: vec![0, 1, 3],
        };
        assert_eq!(report.total(), 4);
        assert_eq!(report.ok(), 2);
        assert_eq!(report.degraded(), 1);
        assert_eq!(report.quarantined(), 1);
        assert!(report.is_accounted());
    }

    #[test]
    fn mismatched_kept_breaks_identity() {
        let report = IngestReport {
            outcomes: vec![PageOutcome::Ok],
            kept: vec![],
        };
        assert!(!report.is_accounted());
    }

    #[test]
    fn reason_counts_cover_all_reasons() {
        let report = IngestReport {
            outcomes: vec![PageOutcome::Degraded {
                reasons: vec![DegradedReason::InputTruncated, DegradedReason::MissingTitle],
            }],
            kept: vec![0],
        };
        let counts = report.reason_counts();
        assert_eq!(counts.len(), DegradedReason::ALL.len());
        assert_eq!(counts[0], (DegradedReason::InputTruncated, 1));
        assert_eq!(counts[4], (DegradedReason::MissingTitle, 1));
        assert_eq!(counts[5], (DegradedReason::NoFormContent, 0));
    }

    #[test]
    fn error_display() {
        let e = IngestError::TooLarge {
            bytes: 100,
            limit: 50,
        };
        assert!(e.to_string().contains("100"));
        assert!(IngestError::EmptyDocument.to_string().contains("text"));
        let b = IngestError::BudgetExhausted {
            needed: 320,
            budget: 64,
        };
        assert!(b.to_string().contains("320"));
        assert!(b.to_string().contains("budget"));
    }

    #[test]
    fn limits_defaults_and_setters() {
        let limits = IngestLimits::new();
        assert_eq!(limits.shard_pages, 16);
        assert_eq!(limits.max_corpus_bytes, usize::MAX);
        let limits = limits.with_shard_pages(1024).with_max_corpus_bytes(1 << 20);
        assert_eq!(limits.shard_pages, 1024);
        assert_eq!(limits.max_corpus_bytes, 1 << 20);
    }

    #[test]
    fn labels_are_stable() {
        for r in DegradedReason::ALL {
            assert!(!r.label().is_empty());
            assert!(r
                .label()
                .chars()
                .all(|c| c.is_ascii_lowercase() || c == '-'));
        }
    }
}
