//! The rejected design as a baseline: a *single* similarity measure mixing
//! text and link evidence with a fixed weight (à la HyPursuit \[35\] and the
//! Web-document clustering line of work the paper contrasts with in §3/§5).
//!
//! The paper argues that "if a term is added to represent hub-induced
//! similarity in Equation 3, it can be hard to determine appropriate
//! weights for each measure", and proposes reinforcement composition
//! (CAFC-CH) instead. This module makes that claim testable: it implements
//! the mixed measure `sim = α·text + (1−α)·link`, where the link component
//! is the cosine over *backlink incidence vectors* (a smooth generalization
//! of co-citation Jaccard), and exposes it as a full [`ClusterSpace`] so
//! the same k-means/HAC machinery runs on it.

use crate::space::{FormPageSpace, MultiCentroid};
use cafc_cluster::ClusterSpace;
use cafc_text::TermId;
use cafc_vsm::SparseVector;
use cafc_webgraph::{PageId, WebGraph};

/// Clustering space with the mixed text+link similarity.
#[derive(Debug, Clone)]
pub struct MixedSimilaritySpace<'a> {
    text: FormPageSpace<'a>,
    /// Per-item backlink incidence vector (dimension = hub page id).
    links: Vec<SparseVector>,
    /// Weight of the text component (`α ∈ \[0,1\]`).
    alpha: f64,
}

/// A centroid in the mixed space.
#[derive(Debug, Clone, Default)]
pub struct MixedCentroid {
    /// Text centroid (per-space averages).
    pub text: MultiCentroid,
    /// Mean backlink-incidence vector.
    pub links: SparseVector,
}

impl<'a> MixedSimilaritySpace<'a> {
    /// Build over the same corpus as `text`, with backlinks of `targets`
    /// taken from `graph` (intra-site backlinks excluded, ≤ `limit` each,
    /// matching the CAFC-CH data diet).
    ///
    /// # Panics
    /// Panics unless `targets.len()` equals the text space's item count and
    /// `alpha ∈ \[0,1\]`.
    pub fn new(
        text: FormPageSpace<'a>,
        graph: &WebGraph,
        targets: &[PageId],
        limit: usize,
        alpha: f64,
    ) -> Self {
        assert_eq!(
            targets.len(),
            text.len(),
            "targets must align with corpus items"
        );
        assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0,1]");
        let links = targets
            .iter()
            .map(|&t| {
                let entries: Vec<(TermId, f64)> = graph
                    .backlinks(t, limit)
                    .iter()
                    .filter(|&&h| !graph.url(h).same_site(graph.url(t)))
                    .map(|&h| (TermId(h.0), 1.0))
                    .collect();
                SparseVector::from_entries(entries)
            })
            .collect();
        MixedSimilaritySpace { text, links, alpha }
    }

    fn mix(&self, text_sim: f64, link_sim: f64) -> f64 {
        self.alpha * text_sim + (1.0 - self.alpha) * link_sim
    }
}

impl ClusterSpace for MixedSimilaritySpace<'_> {
    type Centroid = MixedCentroid;

    fn len(&self) -> usize {
        self.text.len()
    }

    fn centroid(&self, members: &[usize]) -> MixedCentroid {
        MixedCentroid {
            text: self.text.centroid(members),
            links: SparseVector::centroid(members.iter().map(|&m| &self.links[m])),
        }
    }

    fn similarity(&self, centroid: &MixedCentroid, item: usize) -> f64 {
        self.mix(
            self.text.similarity(&centroid.text, item),
            centroid.links.cosine(&self.links[item]),
        )
    }

    fn centroid_similarity(&self, a: &MixedCentroid, b: &MixedCentroid) -> f64 {
        self.mix(
            self.text.centroid_similarity(&a.text, &b.text),
            a.links.cosine(&b.links),
        )
    }

    fn item_similarity(&self, a: usize, b: usize) -> f64 {
        self.mix(
            self.text.item_similarity(a, b),
            self.links[a].cosine(&self.links[b]),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{FormPageCorpus, ModelOptions};
    use crate::space::FeatureConfig;
    use cafc_webgraph::Url;

    fn fixture() -> (WebGraph, Vec<PageId>) {
        let mut g = WebGraph::new();
        let mut targets = Vec::new();
        for i in 0..4 {
            let u = Url::parse(&format!("http://s{i}.com/f")).expect("url");
            let html = if i < 2 {
                "<p>airfare flights travel</p><form>departure <input name=a></form>"
            } else {
                "<p>careers employment salary</p><form>keywords <input name=b></form>"
            };
            targets.push(g.add_page(u, html.to_owned()));
        }
        // Hub co-cites 0 and 1; another co-cites 2 and 3.
        let h1 = g.intern(Url::parse("http://h1.org/").expect("url"));
        let h2 = g.intern(Url::parse("http://h2.org/").expect("url"));
        g.add_link(h1, targets[0]);
        g.add_link(h1, targets[1]);
        g.add_link(h2, targets[2]);
        g.add_link(h2, targets[3]);
        (g, targets)
    }

    #[test]
    fn link_component_detects_cocitation() {
        let (g, targets) = fixture();
        let corpus = FormPageCorpus::from_graph(&g, &targets, &ModelOptions::default());
        let text = FormPageSpace::new(&corpus, FeatureConfig::combined());
        // alpha = 0: pure link similarity.
        let space = MixedSimilaritySpace::new(text, &g, &targets, 100, 0.0);
        assert!((space.item_similarity(0, 1) - 1.0).abs() < 1e-12);
        assert_eq!(space.item_similarity(0, 2), 0.0);
    }

    #[test]
    fn alpha_one_equals_text_space() {
        let (g, targets) = fixture();
        let corpus = FormPageCorpus::from_graph(&g, &targets, &ModelOptions::default());
        let text = FormPageSpace::new(&corpus, FeatureConfig::combined());
        let mixed = MixedSimilaritySpace::new(text, &g, &targets, 100, 1.0);
        for a in 0..4 {
            for b in 0..4 {
                assert!((mixed.item_similarity(a, b) - text.item_similarity(a, b)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn mixed_similarity_interpolates() {
        let (g, targets) = fixture();
        let corpus = FormPageCorpus::from_graph(&g, &targets, &ModelOptions::default());
        let text = FormPageSpace::new(&corpus, FeatureConfig::combined());
        let t = text.item_similarity(0, 1);
        let mixed = MixedSimilaritySpace::new(text, &g, &targets, 100, 0.5);
        let m = mixed.item_similarity(0, 1);
        assert!((m - (0.5 * t + 0.5 * 1.0)).abs() < 1e-12);
    }

    #[test]
    fn kmeans_runs_on_mixed_space() {
        use cafc_cluster::{kmeans, KMeansOptions};
        let (g, targets) = fixture();
        let corpus = FormPageCorpus::from_graph(&g, &targets, &ModelOptions::default());
        let text = FormPageSpace::new(&corpus, FeatureConfig::combined());
        let space = MixedSimilaritySpace::new(text, &g, &targets, 100, 0.5);
        let out = kmeans(
            &space,
            &[vec![0], vec![2]],
            &KMeansOptions::new()
                .with_move_fraction_threshold(1e-9)
                .with_max_iterations(50),
        );
        let clusters = out.partition.clusters();
        assert_eq!(clusters[0], vec![0, 1]);
        assert_eq!(clusters[1], vec![2, 3]);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn rejects_bad_alpha() {
        let (g, targets) = fixture();
        let corpus = FormPageCorpus::from_graph(&g, &targets, &ModelOptions::default());
        let text = FormPageSpace::new(&corpus, FeatureConfig::combined());
        MixedSimilaritySpace::new(text, &g, &targets, 100, 1.5);
    }
}
