//! The query front door: [`SearchPipeline`] — the retrieval twin of
//! [`Pipeline`](crate::Pipeline).
//!
//! The clustering pipeline groups hidden-web databases by domain; this
//! pipeline answers queries against the result. One builder wires the
//! retrieval algorithm, cluster routing, the candidate budget and the
//! execution policy together, and produces a self-contained
//! [`SearchIndex`]:
//!
//! ```
//! use cafc::prelude::*;
//!
//! let pages = [
//!     "<title>Flights</title><p>airfare travel deals</p>\
//!      <form>departure <input name=a></form>",
//!     "<p>airfare travel bargain vacation</p>\
//!      <form>arrival <input name=b></form>",
//!     "<title>Jobs</title><p>careers employment salary</p>\
//!      <form>keywords <input name=c></form>",
//!     "<p>careers salary openings resume</p>\
//!      <form>category <input name=d></form>",
//! ];
//! let outcome = Pipeline::builder()
//!     .algorithm(Algorithm::CafcC { k: 2 })
//!     .seed(3)
//!     .build()
//!     .run_html(&pages)
//!     .expect("CAFC-C accepts HTML input");
//!
//! let index = SearchPipeline::builder()
//!     .config(SearchConfig::new().with_k(3))
//!     .build()
//!     .index(&outcome.corpus, Some(&outcome.partition));
//! let result = index.search("cheap airfare");
//! assert_eq!(result.hits[0].doc, 0);
//! ```
//!
//! ## Determinism contract
//!
//! Index construction is bit-identical under every
//! [`ExecPolicy`](crate::ExecPolicy) (chunked build, chunk-order merge),
//! routing is a pure function of centroids and query, and every scoring
//! path accumulates per document in ascending query-term order — so the
//! same query against the same corpus returns byte-identical hits
//! regardless of thread count, routing, or scan strategy (routed scans
//! return a subset of the full ranking, never different scores).

use crate::model::FormPageCorpus;
use cafc_cluster::Partition;
use cafc_exec::ExecPolicy;
use cafc_index::{rrf_fuse, Bm25Params, ClusterRouter, Hit, InvertedIndex, ScanStats};
use cafc_obs::Obs;
use cafc_text::{Analyzer, TermDict, TermId};
use cafc_vsm::SparseVector;

/// Which ranking the searcher produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum SearchAlgorithm {
    /// Okapi BM25 over raw location-weighted term frequencies.
    Bm25,
    /// Cosine against the TF-IDF page-content space — the ranking the
    /// original `cafc search` entry point produced.
    TfIdf,
    /// Reciprocal-rank fusion of the BM25 and TF-IDF rankings.
    Fused,
}

/// Retrieval configuration.
///
/// Construct with [`SearchConfig::new`] plus the chainable `with_*`
/// setters; the struct is `#[non_exhaustive]` so future knobs are not
/// breaking changes.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct SearchConfig {
    /// Ranking algorithm.
    pub algorithm: SearchAlgorithm,
    /// Cluster-routed scanning: visit clusters in query-to-centroid
    /// similarity order (on) or all shards in id order (off).
    pub routing: bool,
    /// Early-termination budget: stop visiting further clusters once this
    /// many postings have been scanned (the cluster in progress always
    /// completes). `None` scans every routed cluster. Only meaningful
    /// with routing on — an unrouted scan is the full reference ranking
    /// and ignores the budget.
    pub budget: Option<usize>,
    /// Results to return.
    pub k: usize,
    /// BM25 parameters (used by [`SearchAlgorithm::Bm25`] and
    /// [`SearchAlgorithm::Fused`]).
    pub bm25: Bm25Params,
}

impl Default for SearchConfig {
    /// BM25, routing on, no budget, top 10.
    fn default() -> Self {
        SearchConfig {
            algorithm: SearchAlgorithm::Bm25,
            routing: true,
            budget: None,
            k: 10,
            bm25: Bm25Params::new(),
        }
    }
}

impl SearchConfig {
    /// The default configuration (same as `Default`): BM25, routing on,
    /// no budget, top 10.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the ranking algorithm.
    pub fn with_algorithm(mut self, algorithm: SearchAlgorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Enable or disable cluster routing.
    pub fn with_routing(mut self, routing: bool) -> Self {
        self.routing = routing;
        self
    }

    /// Set the postings budget for routed scans.
    pub fn with_budget(mut self, budget: Option<usize>) -> Self {
        self.budget = budget;
        self
    }

    /// Set the number of results to return.
    pub fn with_k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Set the BM25 parameters.
    pub fn with_bm25(mut self, bm25: Bm25Params) -> Self {
        self.bm25 = bm25;
        self
    }
}

/// What one query produced: ranked hits plus scan accounting.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct SearchOutcome {
    /// Ranked results, (score descending, doc id ascending), at most `k`.
    pub hits: Vec<Hit>,
    /// What the scan touched. For [`SearchAlgorithm::Fused`] the two
    /// underlying scans' counters are summed.
    pub stats: ScanStats,
}

impl SearchOutcome {
    /// Assemble an outcome from parts (the struct is `#[non_exhaustive]`,
    /// so downstream crates build synthetic outcomes through this).
    pub fn new(hits: Vec<Hit>, stats: ScanStats) -> Self {
        SearchOutcome { hits, stats }
    }
}

/// A fully configured retrieval run; build with [`SearchPipeline::builder`]
/// and turn a clustered corpus into a [`SearchIndex`] with
/// [`SearchPipeline::index`].
#[derive(Debug, Clone)]
pub struct SearchPipeline {
    config: SearchConfig,
    exec: ExecPolicy,
    obs: Obs,
}

impl SearchPipeline {
    /// Start configuring a search pipeline.
    pub fn builder() -> SearchPipelineBuilder {
        SearchPipelineBuilder::default()
    }

    /// The configured retrieval knobs.
    pub fn config(&self) -> &SearchConfig {
        &self.config
    }

    /// Build a self-contained index over a clustered corpus. With
    /// `partition` the postings are sharded by cluster and routing
    /// follows the clustering; without it everything lands in one shard
    /// (routing degenerates to a full scan).
    pub fn index(&self, corpus: &FormPageCorpus, partition: Option<&Partition>) -> SearchIndex {
        let _span = self.obs.span("search.build");
        let clusters: Vec<Vec<usize>> = match partition {
            Some(p) => p.clusters().to_vec(),
            None => vec![(0..corpus.len()).collect()],
        };
        let index = InvertedIndex::build(&corpus.pc_tf, &clusters, self.exec, &self.obs);
        let router = ClusterRouter::new(&corpus.pc, &clusters);
        SearchIndex {
            config: self.config,
            index,
            router,
            docs_tf: corpus.pc_tf.clone(),
            docs_tfidf: corpus.pc.clone(),
            dict: corpus.dict.clone(),
            analyzer: Analyzer::default(),
            obs: self.obs.clone(),
        }
    }
}

/// Builder for [`SearchPipeline`]; retrieval defaults to
/// [`SearchConfig::default`] under serial execution.
#[derive(Debug, Clone, Default)]
pub struct SearchPipelineBuilder {
    config: SearchConfig,
    exec: ExecPolicy,
    obs: Obs,
}

impl SearchPipelineBuilder {
    /// Set the retrieval configuration.
    pub fn config(mut self, config: SearchConfig) -> Self {
        self.config = config;
        self
    }

    /// Set the execution policy for index construction. The index is
    /// bit-identical for every policy; only wall-clock changes.
    pub fn exec(mut self, policy: ExecPolicy) -> Self {
        self.exec = policy;
        self
    }

    /// Install an observability handle; index construction and every
    /// query record metrics into it. Defaults to [`Obs::disabled`].
    pub fn obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Finalize the pipeline.
    pub fn build(self) -> SearchPipeline {
        SearchPipeline {
            config: self.config,
            exec: self.exec,
            obs: self.obs,
        }
    }
}

/// A self-contained, query-ready view over a clustered corpus: the
/// cluster-sharded inverted index, the router centroids, both scoring
/// spaces and the term dictionary.
#[derive(Debug, Clone)]
pub struct SearchIndex {
    config: SearchConfig,
    index: InvertedIndex,
    router: ClusterRouter,
    docs_tf: Vec<SparseVector>,
    docs_tfidf: Vec<SparseVector>,
    dict: TermDict,
    analyzer: Analyzer,
    obs: Obs,
}

impl SearchIndex {
    /// Number of documents indexed.
    pub fn num_docs(&self) -> usize {
        self.index.num_docs()
    }

    /// Number of cluster shards.
    pub fn num_clusters(&self) -> usize {
        self.index.num_shards()
    }

    /// Total postings stored.
    pub fn num_postings(&self) -> usize {
        self.index.num_postings()
    }

    /// The retrieval configuration the index answers with.
    pub fn config(&self) -> &SearchConfig {
        &self.config
    }

    /// The underlying inverted index.
    pub fn inverted(&self) -> &InvertedIndex {
        &self.index
    }

    /// The term dictionary the index answers against.
    pub fn dict(&self) -> &TermDict {
        &self.dict
    }

    /// The raw location-weighted term-frequency space (one vector per
    /// document) — what BM25 scores and the load generator samples its
    /// query mix from.
    pub fn docs_tf(&self) -> &[SparseVector] {
        &self.docs_tf
    }

    /// Analyze a query against the corpus dictionary: stemmed, stopworded
    /// terms the corpus knows, ascending and deduplicated. Unknown terms
    /// drop out (they cannot score anything).
    pub fn query_terms(&self, query: &str) -> Vec<TermId> {
        let mut probe = TermDict::new();
        let mut terms: Vec<TermId> = self
            .analyzer
            .analyze(query, &mut probe)
            .iter()
            .filter_map(|&t| self.dict.get(probe.term(t)))
            .collect();
        terms.sort_unstable();
        terms.dedup();
        terms
    }

    /// The query as a unit-weighted TF-IDF-space vector (one entry per
    /// distinct known term) — what routing and cosine scoring consume.
    pub fn query_vector(&self, query: &str) -> SparseVector {
        SparseVector::from_entries(self.query_terms(query).iter().map(|&t| (t, 1.0)).collect())
    }

    /// Answer a query under the configured algorithm, routing, budget and
    /// `k`.
    pub fn search(&self, query: &str) -> SearchOutcome {
        self.search_k(query, self.config.k)
    }

    /// [`SearchIndex::search`] with an explicit result count.
    pub fn search_k(&self, query: &str, k: usize) -> SearchOutcome {
        let terms = self.query_terms(query);
        let qvec = SparseVector::from_entries(terms.iter().map(|&t| (t, 1.0)).collect());
        let (order, budget) = if self.config.routing {
            (self.route_order(&qvec), self.config.budget)
        } else {
            (self.index.full_order(), None)
        };
        let outcome = match self.config.algorithm {
            SearchAlgorithm::Bm25 => self.bm25(&terms, k, &order, budget),
            SearchAlgorithm::TfIdf => self.tfidf(&terms, &qvec, k, &order, budget),
            SearchAlgorithm::Fused => {
                let a = self.bm25(&terms, k, &order, budget);
                let b = self.tfidf(&terms, &qvec, k, &order, budget);
                SearchOutcome {
                    hits: rrf_fuse(&[&a.hits, &b.hits], k),
                    stats: combine(a.stats, b.stats),
                }
            }
        };
        if self.obs.is_enabled() {
            self.obs.incr("search.queries");
            self.obs.add(
                "search.postings_scanned",
                outcome.stats.postings_scanned as u64,
            );
            self.obs
                .add("search.docs_scored", outcome.stats.docs_scored as u64);
        }
        outcome
    }

    /// The brute-force full-scan reference ranking for a query: no
    /// routing, no budget, no postings — every document's raw vector is
    /// scored directly. Routed results are validated against this (the
    /// recall@10 acceptance gate).
    pub fn reference(&self, query: &str, k: usize) -> SearchOutcome {
        let terms = self.query_terms(query);
        let qvec = SparseVector::from_entries(terms.iter().map(|&t| (t, 1.0)).collect());
        match self.config.algorithm {
            SearchAlgorithm::Bm25 => {
                let (hits, stats) =
                    self.index
                        .scan_bm25(&self.docs_tf, &terms, k, &self.config.bm25);
                SearchOutcome { hits, stats }
            }
            SearchAlgorithm::TfIdf => self.tfidf_scan(&qvec, k),
            SearchAlgorithm::Fused => {
                let (a, sa) = self
                    .index
                    .scan_bm25(&self.docs_tf, &terms, k, &self.config.bm25);
                let b = self.tfidf_scan(&qvec, k);
                SearchOutcome {
                    hits: rrf_fuse(&[&a, &b.hits], k),
                    stats: combine(sa, b.stats),
                }
            }
        }
    }

    /// Cluster visit order for a query: router order over the clustered
    /// shards, with any trailing overflow shard appended so no document is
    /// unreachable.
    fn route_order(&self, qvec: &SparseVector) -> Vec<usize> {
        let mut order = self.router.route(qvec);
        for shard in self.router.num_clusters()..self.index.num_shards() {
            order.push(shard);
        }
        order
    }

    fn bm25(
        &self,
        terms: &[TermId],
        k: usize,
        order: &[usize],
        budget: Option<usize>,
    ) -> SearchOutcome {
        let (hits, stats) = self
            .index
            .search_bm25(terms, k, order, budget, &self.config.bm25);
        SearchOutcome { hits, stats }
    }

    /// TF-IDF retrieval: candidates discovered through the (budgeted)
    /// postings walk, scored by cosine in the TF-IDF space. Zero-cosine
    /// candidates (all matched terms were idf-0) drop out, matching the
    /// legacy `ClusterIndex::search_pages` contract.
    fn tfidf(
        &self,
        terms: &[TermId],
        qvec: &SparseVector,
        k: usize,
        order: &[usize],
        budget: Option<usize>,
    ) -> SearchOutcome {
        let (candidates, stats) = self.index.candidates(terms, order, budget);
        let mut hits: Vec<Hit> = candidates
            .into_iter()
            .filter_map(|doc| {
                let score = qvec.cosine(&self.docs_tfidf[doc]);
                (score > 0.0).then_some(Hit { doc, score })
            })
            .collect();
        hits.sort_by(|a, b| b.score.total_cmp(&a.score).then_with(|| a.doc.cmp(&b.doc)));
        hits.truncate(k);
        SearchOutcome { hits, stats }
    }

    /// Full cosine scan in the TF-IDF space (reference path).
    fn tfidf_scan(&self, qvec: &SparseVector, k: usize) -> SearchOutcome {
        let mut stats = ScanStats {
            clusters_visited: self.index.num_shards(),
            ..ScanStats::default()
        };
        let mut hits: Vec<Hit> = Vec::new();
        for (doc, vector) in self.docs_tfidf.iter().enumerate() {
            let score = qvec.cosine(vector);
            if score > 0.0 {
                stats.postings_scanned += qvec
                    .entries()
                    .iter()
                    .filter(|&&(t, _)| vector.get(t) != 0.0)
                    .count();
                hits.push(Hit { doc, score });
            }
        }
        stats.docs_scored = hits.len();
        hits.sort_by(|a, b| b.score.total_cmp(&a.score).then_with(|| a.doc.cmp(&b.doc)));
        hits.truncate(k);
        SearchOutcome { hits, stats }
    }
}

/// Sum two scans' accounting (the fused path runs both).
fn combine(a: ScanStats, b: ScanStats) -> ScanStats {
    ScanStats {
        postings_scanned: a.postings_scanned + b.postings_scanned,
        docs_scored: a.docs_scored + b.docs_scored,
        clusters_visited: a.clusters_visited + b.clusters_visited,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pages() -> Vec<&'static str> {
        vec![
            "<title>Cheap Flights</title><p>airfare travel flights deals airline database</p>\
             <form>departure <input name=a></form>",
            "<p>flights airfare vacation airline travel database</p>\
             <form>arrival <input name=b></form>",
            "<title>Job Board</title><p>careers employment salary resume hiring database</p>\
             <form>keywords <input name=c></form>",
            "<p>employment careers openings resume salary database</p>\
             <form>category <input name=d></form>",
        ]
    }

    fn corpus() -> FormPageCorpus {
        FormPageCorpus::from_html(pages().into_iter(), &crate::ModelOptions::default())
    }

    fn partition() -> Partition {
        Partition::new(vec![vec![0, 1], vec![2, 3]], 4)
    }

    fn build(config: SearchConfig) -> SearchIndex {
        SearchPipeline::builder()
            .config(config)
            .build()
            .index(&corpus(), Some(&partition()))
    }

    #[test]
    fn bm25_finds_the_right_documents() {
        let index = build(SearchConfig::new());
        let out = index.search("cheap airfare flights");
        assert!(!out.hits.is_empty());
        assert!(
            out.hits[0].doc < 2,
            "airfare page first, got {:?}",
            out.hits
        );
        let out = index.search("engineering careers salary");
        assert!(out.hits[0].doc >= 2, "job page first, got {:?}", out.hits);
    }

    #[test]
    fn unknown_query_returns_nothing() {
        let index = build(SearchConfig::new());
        let out = index.search("zzzqqq xyzzy");
        assert!(out.hits.is_empty());
        assert_eq!(out.stats.docs_scored, 0);
    }

    #[test]
    fn routed_is_a_prefix_of_reference_with_fewer_postings() {
        // "database" appears on every page, so the reference scan pays for
        // postings in both clusters while the budgeted routed scan stops
        // after the airfare cluster.
        let index = build(SearchConfig::new().with_budget(Some(1)));
        let routed = index.search("airfare database");
        let reference = index.reference("airfare database", 10);
        assert!(!routed.hits.is_empty());
        // Scores are bit-identical, so the routed ranking is a prefix of
        // the full one whenever routing sends the best cluster first.
        assert_eq!(routed.hits[..], reference.hits[..routed.hits.len()]);
        assert!(
            routed.stats.postings_scanned < reference.stats.postings_scanned,
            "routed {:?} vs reference {:?}",
            routed.stats,
            reference.stats
        );
        assert!(routed.stats.clusters_visited < index.num_clusters());
    }

    #[test]
    fn unrouted_bm25_matches_scan_bitwise() {
        let config = SearchConfig::new().with_routing(false);
        let index = build(config);
        for q in [
            "airfare",
            "careers salary",
            "travel careers",
            "flights resume hiring",
        ] {
            let full = index.search(q);
            let reference = index.reference(q, 10);
            assert_eq!(full.hits, reference.hits, "query {q:?}");
        }
    }

    #[test]
    fn tfidf_matches_legacy_cosine_ranking() {
        let config = SearchConfig::new()
            .with_algorithm(SearchAlgorithm::TfIdf)
            .with_routing(false);
        let index = build(config);
        let corpus = corpus();
        for q in ["airfare deals", "employment resume"] {
            let out = index.search(q);
            // The legacy ranking: cosine of the unit query vector against
            // every page's TF-IDF vector, positives only, descending.
            let qvec = index.query_vector(q);
            let mut legacy: Vec<Hit> = corpus
                .pc
                .iter()
                .enumerate()
                .map(|(doc, v)| Hit {
                    doc,
                    score: qvec.cosine(v),
                })
                .filter(|h| h.score > 0.0)
                .collect();
            legacy.sort_by(|a, b| b.score.total_cmp(&a.score).then_with(|| a.doc.cmp(&b.doc)));
            legacy.truncate(10);
            assert_eq!(out.hits, legacy, "query {q:?}");
        }
    }

    #[test]
    fn fused_ranks_with_rrf() {
        let index = build(SearchConfig::new().with_algorithm(SearchAlgorithm::Fused));
        let out = index.search("airfare travel");
        assert!(!out.hits.is_empty());
        assert!(out.hits[0].doc < 2);
        // RRF scores are bounded by rankings · 1/(60+1).
        assert!(out.hits[0].score <= 2.0 / 61.0 + 1e-12);
    }

    #[test]
    fn k_caps_results() {
        let index = build(SearchConfig::new().with_k(1));
        assert_eq!(index.search("travel careers airfare salary").hits.len(), 1);
        assert!(
            index
                .search_k("travel careers airfare salary", 3)
                .hits
                .len()
                > 1
        );
    }

    #[test]
    fn exec_policies_build_identical_search_indexes() {
        let corpus = corpus();
        let partition = partition();
        let serial = SearchPipeline::builder()
            .exec(ExecPolicy::Serial)
            .build()
            .index(&corpus, Some(&partition));
        for policy in [ExecPolicy::Parallel { threads: 4 }, ExecPolicy::Auto] {
            let parallel = SearchPipeline::builder()
                .exec(policy)
                .build()
                .index(&corpus, Some(&partition));
            for q in ["airfare", "careers salary", "travel"] {
                let a = serial.search(q);
                let b = parallel.search(q);
                assert_eq!(a.hits, b.hits, "{policy:?} {q:?}");
                assert_eq!(a.stats, b.stats, "{policy:?} {q:?}");
            }
        }
    }

    #[test]
    fn unpartitioned_corpus_is_searchable() {
        let index = SearchPipeline::builder().build().index(&corpus(), None);
        assert_eq!(index.num_clusters(), 1);
        let out = index.search("airfare");
        assert!(!out.hits.is_empty());
    }
}
