//! # cafc-classify
//!
//! A generic searchable-form classifier — the pre-processing substrate the
//! paper assumes as input: "We assume that the input to our clustering
//! algorithm consists of only searchable forms. Non-searchable forms can
//! be filtered out using techniques such as the generic form classifier
//! proposed in \[3\]" (Barbosa & Freire, WebDB 2005).
//!
//! That classifier is a decision procedure over *structural* form features
//! (field-type counts, method, action keywords) — deliberately
//! domain-independent, since it runs before any domain organization exists.
//! We implement it as an interpretable feature-scoring model with the same
//! feature set, hand-calibrated on the corpus generator's form phenomenology
//! and exposed for inspection via [`FormFeatures`].

#![warn(missing_docs)]

use cafc_html::{Form, FormFieldKind};

/// Structural features of a form, the classifier's input.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FormFeatures {
    /// Number of user-fillable fields.
    pub query_fields: usize,
    /// Free-text inputs (`text`/`textarea`).
    pub text_fields: usize,
    /// Password inputs.
    pub password_fields: usize,
    /// `<select>` fields.
    pub selects: usize,
    /// Checkboxes + radios.
    pub toggles: usize,
    /// File-upload fields.
    pub file_fields: usize,
    /// Form method is POST.
    pub is_post: bool,
    /// Action URL or submit label contains a search-ish keyword.
    pub search_keyword: bool,
    /// Action URL or submit label contains an account/contact keyword.
    pub account_keyword: bool,
}

/// Keywords indicating a query interface.
const SEARCH_KEYWORDS: &[&str] = &[
    "search", "find", "query", "browse", "lookup", "results", "go", "show",
];

/// Keywords indicating account management / contact workflows.
const ACCOUNT_KEYWORDS: &[&str] = &[
    "login",
    "logon",
    "signin",
    "register",
    "signup",
    "subscribe",
    "password",
    "quote",
    "contact",
    "feedback",
    "checkout",
    "cart",
    "mail",
];

impl FormFeatures {
    /// Extract features from a parsed form.
    pub fn extract(form: &Form) -> FormFeatures {
        let mut f = FormFeatures {
            query_fields: 0,
            text_fields: 0,
            password_fields: 0,
            selects: 0,
            toggles: 0,
            file_fields: 0,
            is_post: form.method == cafc_html::FormMethod::Post,
            search_keyword: false,
            account_keyword: false,
        };
        for field in &form.fields {
            if field.kind.is_query_attribute() {
                f.query_fields += 1;
            }
            match field.kind {
                FormFieldKind::Text | FormFieldKind::Textarea => f.text_fields += 1,
                FormFieldKind::Password => f.password_fields += 1,
                FormFieldKind::Select => f.selects += 1,
                FormFieldKind::Checkbox | FormFieldKind::Radio => f.toggles += 1,
                FormFieldKind::File => f.file_fields += 1,
                _ => {}
            }
        }
        let mut haystack = form.action.clone().unwrap_or_default().to_ascii_lowercase();
        for label in form.submit_labels() {
            haystack.push(' ');
            haystack.push_str(&label.to_ascii_lowercase());
        }
        f.search_keyword = SEARCH_KEYWORDS.iter().any(|k| haystack.contains(k));
        f.account_keyword = ACCOUNT_KEYWORDS.iter().any(|k| haystack.contains(k));
        f
    }

    /// Classifier score; positive means searchable.
    pub fn score(&self) -> f64 {
        let mut s = 0.0;
        // Hard negatives: a password field means account management, not a
        // database query; file uploads likewise.
        s -= 6.0 * self.password_fields as f64;
        s -= 3.0 * self.file_fields as f64;
        // Selects and toggles are the fingerprints of structured query
        // interfaces.
        s += 1.6 * self.selects as f64;
        s += 0.4 * self.toggles as f64;
        // A lone text box is a keyword interface *if* the surrounding
        // evidence says "search".
        if self.text_fields >= 1 {
            s += 0.8;
        }
        // Many text boxes (name/email/phone/comments) suggest data entry.
        if self.text_fields >= 3 && self.selects == 0 {
            s -= 2.5;
        }
        if self.search_keyword {
            s += 2.0;
        }
        if self.account_keyword {
            s -= 3.0;
        }
        // Searchable interfaces overwhelmingly use GET; POST correlates
        // with state-changing submissions.
        if self.is_post {
            s -= 0.7;
        }
        if self.query_fields == 0 {
            s -= 5.0;
        }
        s
    }
}

/// Is this form a searchable query interface?
pub fn is_searchable(form: &Form) -> bool {
    FormFeatures::extract(form).score() > 0.0
}

/// Filter a page's forms down to the searchable ones.
pub fn searchable_forms(doc: &cafc_html::Document) -> Vec<Form> {
    cafc_html::extract_forms(doc)
        .into_iter()
        .filter(is_searchable)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cafc_html::parse;

    fn form(html: &str) -> Form {
        let doc = parse(html);
        cafc_html::extract_forms(&doc).remove(0)
    }

    #[test]
    fn keyword_search_form_is_searchable() {
        let f =
            form(r#"<form action="/search"><input name=q><input type=submit value=Search></form>"#);
        assert!(is_searchable(&f));
    }

    #[test]
    fn multi_attribute_form_is_searchable() {
        let f = form(
            r#"<form action="/find" method=get>
            <select name=make><option>Ford</option><option>Toyota</option></select>
            <select name=year><option>2005</option></select>
            <input type=text name=zip>
            <input type=submit value="Find Cars"></form>"#,
        );
        assert!(is_searchable(&f));
    }

    #[test]
    fn login_form_is_not_searchable() {
        let f = form(
            r#"<form action="/login" method=post>
            <input name=user><input type=password name=pass>
            <input type=submit value=Login></form>"#,
        );
        assert!(!is_searchable(&f));
    }

    #[test]
    fn signup_form_is_not_searchable() {
        let f = form(
            r#"<form action="/register" method=post>
            <input name=name><input name=email>
            <input type=password name=pw><input type=password name=pw2>
            <input type=submit value="Create Account"></form>"#,
        );
        assert!(!is_searchable(&f));
    }

    #[test]
    fn quote_request_is_not_searchable() {
        let f = form(
            r#"<form action="/quote" method=post>
            <input name=name><input name=phone><input name=email>
            <textarea name=comments></textarea>
            <input type=submit value="Request Quote"></form>"#,
        );
        assert!(!is_searchable(&f));
    }

    #[test]
    fn newsletter_is_not_searchable() {
        let f = form(
            r#"<form action="/subscribe" method=post>
            <input name=email><input type=submit value=Subscribe></form>"#,
        );
        assert!(!is_searchable(&f));
    }

    #[test]
    fn empty_form_is_not_searchable() {
        let f = form("<form action=/x></form>");
        assert!(!is_searchable(&f));
    }

    #[test]
    fn post_search_form_still_searchable_with_selects() {
        // Some real search interfaces POST; structure outweighs the method.
        let f = form(
            r#"<form action="/search" method=post>
            <select name=genre><option>Rock</option></select>
            <select name=year><option>May</option></select>
            <input type=submit value=Search></form>"#,
        );
        assert!(is_searchable(&f));
    }

    #[test]
    fn features_extraction() {
        let f = form(
            r#"<form action="/search" method=post>
            <input name=a><input type=password name=b>
            <select name=c><option>x</option></select>
            <input type=checkbox name=d>
            <input type=submit value=Go></form>"#,
        );
        let feats = FormFeatures::extract(&f);
        assert_eq!(feats.text_fields, 1);
        assert_eq!(feats.password_fields, 1);
        assert_eq!(feats.selects, 1);
        assert_eq!(feats.toggles, 1);
        assert!(feats.is_post);
        assert!(feats.search_keyword);
    }

    #[test]
    fn searchable_forms_filters_page() {
        let doc = parse(
            r#"<form action="/search"><input name=q><input type=submit value=Search></form>
            <form action="/login" method=post><input name=u><input type=password name=p>
            <input type=submit value=Login></form>"#,
        );
        let forms = searchable_forms(&doc);
        assert_eq!(forms.len(), 1);
        assert_eq!(forms[0].action.as_deref(), Some("/search"));
    }
}
