//! # cafc-bench
//!
//! Shared experiment machinery for regenerating every table and figure of
//! the paper. Each bench target (`benches/*.rs`, built with
//! `harness = false`) calls into this crate, runs one experiment on the
//! default 454-page synthetic corpus, and prints the same rows/series the
//! paper reports; `EXPERIMENTS.md` records paper-vs-measured.

#![warn(missing_docs)]

use cafc::{
    cafc_c, cafc_ch, CafcChConfig, FeatureConfig, FormPageCorpus, FormPageSpace, KMeansOptions,
    LocationWeights, ModelOptions, Partition,
};
use cafc_corpus::{generate, CorpusConfig, Domain, SyntheticWeb};
use cafc_eval::EntropyBase;
use cafc_webgraph::{HubClusterOptions, PageId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

/// The paper's cluster count (8 domains).
pub const K: usize = 8;
/// CAFC-C runs are averaged over this many random seedings (paper: 20).
pub const CAFC_C_RUNS: u64 = 20;

/// A prepared experiment environment: the synthetic web plus vectorized
/// corpora under both weighting schemes.
pub struct Bench {
    /// The generated web.
    pub web: SyntheticWeb,
    /// Form-page targets aligned with corpus items.
    pub targets: Vec<PageId>,
    /// Gold labels aligned with corpus items.
    pub labels: Vec<Domain>,
    /// Corpus with differentiated LOC weights (the paper's default).
    pub corpus: FormPageCorpus,
    /// Corpus with uniform weights (the §4.4 ablation).
    pub corpus_uniform: FormPageCorpus,
    /// Corpus with the anchor-text extension vectors.
    pub corpus_anchors: FormPageCorpus,
}

impl Bench {
    /// Build the default paper-scale environment (454 pages).
    pub fn paper_scale() -> Bench {
        Bench::with_config(&CorpusConfig::default())
    }

    /// Build from an explicit corpus configuration.
    pub fn with_config(config: &CorpusConfig) -> Bench {
        let web = generate(config);
        let targets = web.form_page_ids();
        let labels = web.labels();
        let corpus = FormPageCorpus::from_graph(&web.graph, &targets, &ModelOptions::default());
        let corpus_uniform = FormPageCorpus::from_graph(
            &web.graph,
            &targets,
            &ModelOptions::new().with_weights(LocationWeights::uniform()),
        );
        let corpus_anchors =
            FormPageCorpus::from_graph_with_anchors(&web.graph, &targets, &ModelOptions::default());
        Bench {
            web,
            targets,
            labels,
            corpus,
            corpus_uniform,
            corpus_anchors,
        }
    }

    /// A space over the default corpus.
    pub fn space(&self, config: FeatureConfig) -> FormPageSpace<'_> {
        FormPageSpace::new(&self.corpus, config)
    }
}

/// Cluster-quality summary for one clustering.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct Quality {
    /// Equation-5 entropy (log base 2).
    pub entropy: f64,
    /// Equation-6 F-measure (cluster-weighted, per the paper).
    pub f_measure: f64,
    /// Larsen–Aone class-weighted F.
    pub f_by_class: f64,
    /// Purity.
    pub purity: f64,
}

/// Evaluate a partition against gold labels.
pub fn quality(partition: &Partition, labels: &[Domain]) -> Quality {
    let clusters = partition.clusters();
    Quality {
        entropy: cafc_eval::entropy(clusters, labels, EntropyBase::Two),
        f_measure: cafc_eval::f_measure(clusters, labels),
        f_by_class: cafc_eval::f_measure_by_class(clusters, labels),
        purity: cafc_eval::purity(clusters, labels),
    }
}

/// Mean of a set of quality summaries.
pub fn mean_quality(qs: &[Quality]) -> Quality {
    let n = qs.len().max(1) as f64;
    Quality {
        entropy: qs.iter().map(|q| q.entropy).sum::<f64>() / n,
        f_measure: qs.iter().map(|q| q.f_measure).sum::<f64>() / n,
        f_by_class: qs.iter().map(|q| q.f_by_class).sum::<f64>() / n,
        purity: qs.iter().map(|q| q.purity).sum::<f64>() / n,
    }
}

/// CAFC-C averaged over [`CAFC_C_RUNS`] random seedings.
pub fn run_cafc_c_avg(space: &FormPageSpace<'_>, labels: &[Domain], base_seed: u64) -> Quality {
    let qs: Vec<Quality> = (0..CAFC_C_RUNS)
        .map(|run| {
            let mut rng = StdRng::seed_from_u64(base_seed.wrapping_add(run));
            let out = cafc_c(space, K, &KMeansOptions::default(), &mut rng);
            quality(&out.partition, labels)
        })
        .collect();
    mean_quality(&qs)
}

/// One CAFC-C run (for callers that need the partition itself).
pub fn run_cafc_c_once(space: &FormPageSpace<'_>, seed: u64) -> Partition {
    let mut rng = StdRng::seed_from_u64(seed);
    cafc_c(space, K, &KMeansOptions::default(), &mut rng).partition
}

/// CAFC-CH with the given minimum hub-cluster cardinality.
pub fn run_cafc_ch(
    bench: &Bench,
    space: &FormPageSpace<'_>,
    min_cardinality: usize,
    seed: u64,
) -> (Quality, cafc::CafcChOutcome) {
    let config = CafcChConfig::paper_default(K).with_hub(HubClusterOptions {
        min_cardinality,
        ..HubClusterOptions::default()
    });
    let mut rng = StdRng::seed_from_u64(seed);
    let outcome = cafc_ch(&bench.web.graph, &bench.targets, space, &config, &mut rng);
    (quality(&outcome.outcome.partition, &bench.labels), outcome)
}

/// Pretty-print one metric row.
pub fn print_row(label: &str, q: &Quality) {
    println!(
        "{label:<28} entropy {:>6.3}   F {:>5.3}   F(class) {:>5.3}   purity {:>5.3}",
        q.entropy, q.f_measure, q.f_by_class, q.purity
    );
}

/// Make seed clusters disjoint: an item claimed by an earlier seed is
/// dropped from later ones (HAC needs a partition; k-means does not care).
pub fn disjoint_seeds(seeds: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let mut claimed = std::collections::HashSet::new();
    seeds
        .iter()
        .map(|s| {
            s.iter()
                .copied()
                .filter(|&i| claimed.insert(i))
                .collect::<Vec<usize>>()
        })
        .filter(|s| !s.is_empty())
        .collect()
}

/// Persist experiment output as JSON under `experiments/` at the workspace
/// root (next to `EXPERIMENTS.md`). Failures are reported, not fatal — the
/// printed tables are the primary artifact.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../experiments");
    let path = dir.join(format!("{name}.json"));
    let result = std::fs::create_dir_all(&dir).and_then(|()| {
        let json = serde_json::to_string_pretty(value)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        std::fs::write(&path, json)
    });
    match result {
        Ok(()) => println!("\n[wrote {}]", path.display()),
        Err(e) => eprintln!("\n[could not write {}: {e}]", path.display()),
    }
}

/// Standard experiment header.
pub fn print_header(title: &str, paper_says: &str) {
    println!("================================================================");
    println!("{title}");
    println!("paper: {paper_says}");
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_builds_on_small_corpus() {
        let b = Bench::with_config(&CorpusConfig::small(11));
        assert_eq!(b.corpus.len(), b.targets.len());
        assert_eq!(b.labels.len(), b.targets.len());
        let space = b.space(FeatureConfig::combined());
        let q = run_cafc_c_avg(&space, &b.labels, 1);
        assert!(q.entropy >= 0.0 && q.f_measure > 0.0);
    }

    #[test]
    fn mean_quality_averages() {
        let a = Quality {
            entropy: 1.0,
            f_measure: 0.5,
            f_by_class: 0.5,
            purity: 0.5,
        };
        let b = Quality {
            entropy: 3.0,
            f_measure: 1.0,
            f_by_class: 1.0,
            purity: 1.0,
        };
        let m = mean_quality(&[a, b]);
        assert_eq!(m.entropy, 2.0);
        assert_eq!(m.f_measure, 0.75);
    }
}
