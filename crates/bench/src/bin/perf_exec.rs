//! Serial vs parallel wall-clock for the full pipeline (vectorization +
//! CAFC-CH) at several corpus sizes, plus a determinism cross-check: every
//! policy must produce the identical partition. Results are recorded in
//! EXPERIMENTS.md ("Execution layer: serial vs parallel wall-clock").

use cafc::{cafc_ch_exec, CafcChConfig, ExecPolicy, FeatureConfig, FormPageCorpus, FormPageSpace};
use cafc::{ModelOptions, Partition};
use cafc_corpus::{generate, CorpusConfig};
use cafc_webgraph::PageId;
use cafc_webgraph::WebGraph;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::time::{Duration, Instant};

const K: usize = 8;
const SEED: u64 = 3;

#[derive(Serialize)]
struct Row {
    pages: usize,
    serial_ms: f64,
    parallel_ms: f64,
    threads: usize,
    speedup: f64,
    identical: bool,
}

fn corpus_config(pages: usize) -> CorpusConfig {
    CorpusConfig {
        total_form_pages: pages,
        single_attribute_count: (pages / 8).max(1),
        non_searchable_count: (pages / 8).max(1),
        hubs_per_domain: pages.max(8),
        mixed_hubs: (pages / 4).max(2),
        seed: SEED,
        ..CorpusConfig::default()
    }
}

fn run(graph: &WebGraph, targets: &[PageId], policy: ExecPolicy) -> (Duration, Partition) {
    let start = Instant::now();
    let corpus = FormPageCorpus::from_graph_exec(graph, targets, &ModelOptions::default(), policy);
    let space = FormPageSpace::new(&corpus, FeatureConfig::combined());
    let mut rng = StdRng::seed_from_u64(SEED);
    let out = cafc_ch_exec(
        graph,
        targets,
        &space,
        &CafcChConfig::paper_default(K),
        &mut rng,
        policy,
    );
    (start.elapsed(), out.outcome.partition)
}

fn main() {
    let parallel = ExecPolicy::Auto;
    let threads = parallel.threads();
    cafc_bench::print_header(
        "Execution layer: serial vs parallel wall-clock (CAFC-CH end to end)",
        "not in the paper — validates the deterministic execution layer",
    );
    println!("parallel policy: Auto ({threads} worker thread(s))");
    println!();
    println!("  pages  serial_ms  parallel_ms  speedup  identical");
    let mut rows = Vec::new();
    for pages in [120usize, 240, 480, 960] {
        let web = generate(&corpus_config(pages));
        let targets = web.form_page_ids();
        // Warm-up pass so neither arm pays first-touch costs.
        let _ = run(&web.graph, &targets, ExecPolicy::Serial);
        let (serial_t, serial_p) = run(&web.graph, &targets, ExecPolicy::Serial);
        let (parallel_t, parallel_p) = run(&web.graph, &targets, parallel);
        let row = Row {
            pages: targets.len(),
            serial_ms: serial_t.as_secs_f64() * 1e3,
            parallel_ms: parallel_t.as_secs_f64() * 1e3,
            threads,
            speedup: serial_t.as_secs_f64() / parallel_t.as_secs_f64().max(1e-9),
            identical: serial_p == parallel_p,
        };
        println!(
            "{:>7}  {:>9.1}  {:>11.1}  {:>6.2}x  {}",
            row.pages,
            row.serial_ms,
            row.parallel_ms,
            row.speedup,
            if row.identical { "yes" } else { "NO" },
        );
        assert!(
            row.identical,
            "policies diverged at {pages} pages — determinism contract violated"
        );
        rows.push(row);
    }
    cafc_bench::write_json("perf_exec", &rows);
}
