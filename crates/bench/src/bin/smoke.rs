//! Quick scientific smoke check: do the paper's headline shapes hold on
//! the paper-scale synthetic corpus? Prints Figure-2-style numbers plus
//! hub statistics. Run with `cargo run --release -p cafc-bench --bin smoke`.

use cafc::FeatureConfig;
use cafc_bench::{print_row, run_cafc_c_avg, run_cafc_ch, Bench};
use cafc_webgraph::hub::{homogeneity, hub_clusters};
use cafc_webgraph::HubClusterOptions;
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    let bench = Bench::paper_scale();
    println!(
        "corpus: {} form pages, {} graph pages, {} links  (built in {:?})",
        bench.targets.len(),
        bench.web.graph.len(),
        bench.web.graph.num_links(),
        t0.elapsed()
    );

    // Hub statistics (§3.1).
    let (clusters, stats) = hub_clusters(
        &bench.web.graph,
        &bench.targets,
        &HubClusterOptions {
            min_cardinality: 1,
            ..HubClusterOptions::default()
        },
    );
    let homog = homogeneity(&clusters, &bench.labels).unwrap_or(0.0);
    println!(
        "hubs: {} distinct clusters, {:.1}% homogeneous, {} pages w/o backlinks, {} uncovered",
        stats.distinct_clusters,
        homog * 100.0,
        stats.targets_without_backlinks,
        stats.targets_uncovered
    );
    let (clusters8, stats8) = hub_clusters(
        &bench.web.graph,
        &bench.targets,
        &HubClusterOptions::default(),
    );
    println!(
        "  at min cardinality 8: {} clusters ({:.1}% homogeneous)",
        stats8.clusters_after_filter,
        homogeneity(&clusters8, &bench.labels).unwrap_or(0.0) * 100.0
    );

    for (name, config) in [
        ("FC", FeatureConfig::FcOnly),
        ("PC", FeatureConfig::PcOnly),
        ("FC+PC", FeatureConfig::combined()),
    ] {
        let space = bench.space(config);
        let t = Instant::now();
        let c = run_cafc_c_avg(&space, &bench.labels, 100);
        print_row(&format!("CAFC-C  {name}"), &c);
        let (ch, out) = run_cafc_ch(&bench, &space, 8, 200);
        print_row(&format!("CAFC-CH {name}"), &ch);
        println!(
            "   [hub seeds {}, padded {}]  ({:?})",
            out.hub_seeds,
            out.padded_seeds,
            t.elapsed()
        );
    }
}
