//! Diagnostic: CAFC-CH (min cardinality 8) across corpus realizations.

use cafc::FeatureConfig;
use cafc_bench::{run_cafc_ch, Bench};
use cafc_corpus::CorpusConfig;

fn main() {
    for seed in [20070415u64, 1, 2, 3, 4, 5, 6, 7] {
        let config = CorpusConfig {
            seed,
            ..CorpusConfig::default()
        };
        let bench = Bench::with_config(&config);
        let space = bench.space(FeatureConfig::combined());
        let (q8, _) = run_cafc_ch(&bench, &space, 8, 0xF162C);
        let (q7, _) = run_cafc_ch(&bench, &space, 7, 0xF162C);
        println!(
            "corpus seed {seed:>9}: card8 entropy {:.3} F {:.3} | card7 entropy {:.3} F {:.3}",
            q8.entropy, q8.f_measure, q7.entropy, q7.f_measure
        );
    }
}
