//! Diagnostic: HAC linkage × seeding grid for Table 2 calibration.

use cafc::{select_hub_clusters, CafcChConfig, FeatureConfig, HacOptions, Linkage};
use cafc_bench::{disjoint_seeds, quality, Bench, K};
use cafc_cluster::hac;

fn main() {
    let bench = Bench::paper_scale();
    let space = bench.space(FeatureConfig::combined());
    let (seeds, _, _) = select_hub_clusters(
        &bench.web.graph,
        &bench.targets,
        &space,
        &CafcChConfig::paper_default(K),
    );
    let initial = disjoint_seeds(&seeds);
    // Alternative: seed with ALL surviving hub clusters, not just the k
    // selected — HAC agglomerates them down to k.
    let (all_clusters, _) = cafc_webgraph::hub_clusters(
        &bench.web.graph,
        &bench.targets,
        &cafc_webgraph::HubClusterOptions::default(),
    );
    let all_members: Vec<Vec<usize>> = all_clusters.into_iter().map(|c| c.members).collect();
    let initial_all = disjoint_seeds(&all_members);
    println!(
        "{} disjoint groups from all hub clusters",
        initial_all.len()
    );
    for linkage in [Linkage::Average, Linkage::Centroid, Linkage::Complete] {
        let opts = HacOptions {
            target_clusters: K,
            linkage,
        };
        let plain = quality(&hac(&space, &[], &opts), &bench.labels);
        let seeded = quality(&hac(&space, &initial, &opts), &bench.labels);
        let seeded_all = quality(&hac(&space, &initial_all, &opts), &bench.labels);
        println!(
            "{linkage:?}: unseeded ({:.3}, {:.3}) | 8-seeds ({:.3}, {:.3}) | all-hubs ({:.3}, {:.3})",
            plain.entropy,
            plain.f_measure,
            seeded.entropy,
            seeded.f_measure,
            seeded_all.entropy,
            seeded_all.f_measure
        );
    }
}
