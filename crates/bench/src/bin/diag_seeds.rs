//! Diagnostic: domain composition of the hub clusters Algorithm 3 selects.

use cafc::{select_hub_clusters, CafcChConfig, FeatureConfig};
use cafc_bench::Bench;
use cafc_corpus::Domain;
use cafc_webgraph::HubClusterOptions;

fn main() {
    let bench = Bench::paper_scale();
    let space = bench.space(FeatureConfig::combined());
    for min_card in [7usize, 8, 9, 10] {
        let config = CafcChConfig::paper_default(8).with_hub(HubClusterOptions {
            min_cardinality: min_card,
            ..Default::default()
        });
        let (seeds, _, _) = select_hub_clusters(&bench.web.graph, &bench.targets, &space, &config);
        println!("min_card {min_card}: {} seeds", seeds.len());
        for (i, seed) in seeds.iter().enumerate() {
            let mut counts = vec![0usize; 8];
            for &m in seed {
                counts[bench.labels[m].index()] += 1;
            }
            let desc: Vec<String> = Domain::ALL
                .iter()
                .zip(&counts)
                .filter(|(_, &c)| c > 0)
                .map(|(d, &c)| format!("{}:{c}", d.name()))
                .collect();
            println!("  seed {i}: [{}] size {}", desc.join(" "), seed.len());
        }
    }
}
