//! Criterion micro-benchmarks: throughput of the pipeline stages.
//!
//! These are ours (the paper reports no running times); they document the
//! cost profile of each stage and guard against performance regressions.

use cafc::{
    cafc_c, select_hub_clusters, CafcChConfig, FeatureConfig, FormPageCorpus, FormPageSpace,
    KMeansOptions, ModelOptions,
};
use cafc_cluster::{hac_from_singletons, HacOptions, Linkage};
use cafc_corpus::{generate, CorpusConfig};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_parsing(c: &mut Criterion) {
    let web = generate(&CorpusConfig::small(1));
    let html = web
        .graph
        .html(web.form_pages[0].page)
        .expect("html")
        .to_owned();
    c.bench_function("html_parse_form_page", |b| {
        b.iter(|| cafc_html::parse(black_box(&html)))
    });
    c.bench_function("form_extraction", |b| {
        let doc = cafc_html::parse(&html);
        b.iter(|| cafc_html::extract_forms(black_box(&doc)))
    });
    c.bench_function("located_text", |b| {
        let doc = cafc_html::parse(&html);
        b.iter(|| cafc_html::located_text(black_box(&doc)))
    });
}

fn bench_text(c: &mut Criterion) {
    c.bench_function("porter_stem_word", |b| {
        b.iter(|| cafc_text::stem(black_box("relational")))
    });
    let text = "Searching for the cheapest international flights and vacation packages \
                with flexible departure dates from all major airports"
        .repeat(8);
    c.bench_function("tokenize_paragraph", |b| {
        b.iter(|| cafc_text::tokenize(black_box(&text)))
    });
}

fn bench_model(c: &mut Criterion) {
    let web = generate(&CorpusConfig::small(2));
    let targets = web.form_page_ids();
    c.bench_function("build_corpus_80_pages", |b| {
        b.iter(|| {
            FormPageCorpus::from_graph(
                black_box(&web.graph),
                black_box(&targets),
                &ModelOptions::default(),
            )
        })
    });
}

fn bench_clustering(c: &mut Criterion) {
    let web = generate(&CorpusConfig::small(3));
    let targets = web.form_page_ids();
    let corpus = FormPageCorpus::from_graph(&web.graph, &targets, &ModelOptions::default());
    let space = FormPageSpace::new(&corpus, FeatureConfig::combined());

    c.bench_function("kmeans_80_pages_k8", |b| {
        b.iter_batched(
            || StdRng::seed_from_u64(7),
            |mut rng| cafc_c(&space, 8, &KMeansOptions::default(), &mut rng),
            BatchSize::SmallInput,
        )
    });
    c.bench_function("hac_80_pages_k8", |b| {
        b.iter(|| {
            hac_from_singletons(
                &space,
                &HacOptions {
                    target_clusters: 8,
                    linkage: Linkage::Average,
                },
            )
        })
    });
    c.bench_function("select_hub_clusters_80_pages", |b| {
        let config = CafcChConfig::paper_default(8);
        b.iter(|| select_hub_clusters(&web.graph, &targets, &space, &config))
    });
}

criterion_group!(
    benches,
    bench_parsing,
    bench_text,
    bench_model,
    bench_clustering
);
criterion_main!(benches);
