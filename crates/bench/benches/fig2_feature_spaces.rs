//! **Figure 2** — Entropy and F-measure obtained by CAFC-C and CAFC-CH
//! using only the form content (FC), only the page content (PC), and the
//! two combined (FC+PC).
//!
//! Paper's reported values: CAFC-C FC ≈ (entropy 1.1, F 0.61); CAFC-C
//! FC+PC ≈ (0.56, 0.74); CAFC-CH FC+PC ≈ (0.15, 0.96) — hubs cut entropy
//! to about a quarter and lift F by ~29.7 %; FC+PC beats either space
//! alone under both algorithms.

use cafc::FeatureConfig;
use cafc_bench::{print_header, print_row, run_cafc_c_avg, run_cafc_ch, Bench, CAFC_C_RUNS};

fn main() {
    print_header(
        "Figure 2: feature spaces (FC / PC / FC+PC) under CAFC-C and CAFC-CH",
        "FC+PC dominates; CAFC-C FC+PC ~ (0.56, 0.74); CAFC-CH FC+PC ~ (0.15, 0.96)",
    );
    let bench = Bench::paper_scale();
    println!(
        "corpus: {} form pages; CAFC-C averaged over {CAFC_C_RUNS} runs; \
         CAFC-CH min hub cardinality 8\n",
        bench.targets.len()
    );

    let mut rows: Vec<(String, cafc_bench::Quality)> = Vec::new();
    for (name, config) in [
        ("FC", FeatureConfig::FcOnly),
        ("PC", FeatureConfig::PcOnly),
        ("FC+PC", FeatureConfig::combined()),
    ] {
        let space = bench.space(config);
        let c = run_cafc_c_avg(&space, &bench.labels, 0xF162);
        print_row(&format!("CAFC-C  {name}"), &c);
        rows.push((format!("CAFC-C {name}"), c));
        let (ch, _) = run_cafc_ch(&bench, &space, 8, 0xF162C);
        print_row(&format!("CAFC-CH {name}"), &ch);
        rows.push((format!("CAFC-CH {name}"), ch));
    }

    // The paper's two headline deltas.
    let c_fcpc = rows
        .iter()
        .find(|(n, _)| n == "CAFC-C FC+PC")
        .expect("row exists")
        .1;
    let ch_fcpc = rows
        .iter()
        .find(|(n, _)| n == "CAFC-CH FC+PC")
        .expect("row exists")
        .1;
    println!(
        "\nhub benefit on FC+PC: entropy {:.3} -> {:.3} ({:.1}x lower), \
         F {:.3} -> {:.3} (+{:.1}%)",
        c_fcpc.entropy,
        ch_fcpc.entropy,
        c_fcpc.entropy / ch_fcpc.entropy.max(1e-9),
        c_fcpc.f_measure,
        ch_fcpc.f_measure,
        (ch_fcpc.f_measure / c_fcpc.f_measure - 1.0) * 100.0,
    );

    cafc_bench::write_json("fig2_feature_spaces", &rows);
}
