//! **§4.3** — HAC-sample seeding versus hub seeding for k-means.
//!
//! "One widely-used technique to derive seeds for k-means is to take a
//! sample of points and use HAC to cluster them. ... Although there is
//! little difference in the F-measure values (0.93 versus 0.96), the
//! entropy is 60 % higher than the one obtained by CAFC-CH."

use cafc::{FeatureConfig, HacOptions, KMeansOptions, Linkage};
use cafc_bench::{print_header, print_row, quality, run_cafc_ch, Bench, K};
use cafc_cluster::{hac, kmeans};

fn main() {
    print_header(
        "§4.3: HAC-derived seeds vs hub-derived seeds for k-means",
        "F close (0.93 vs 0.96) but HAC-seeded entropy ~60% higher than CAFC-CH",
    );
    let bench = Bench::paper_scale();
    let space = bench.space(FeatureConfig::combined());

    // HAC over the entire dataset; its clusters seed k-means.
    let hac_partition = hac(
        &space,
        &[],
        &HacOptions {
            target_clusters: K,
            linkage: Linkage::Average,
        },
    );
    let seeds: Vec<Vec<usize>> = hac_partition
        .clusters()
        .iter()
        .filter(|c| !c.is_empty())
        .cloned()
        .collect();
    let out = kmeans(&space, &seeds, &KMeansOptions::default());
    let hac_seeded = quality(&out.partition, &bench.labels);
    print_row("HAC-seeded k-means", &hac_seeded);

    let (hub_seeded, _) = run_cafc_ch(&bench, &space, 8, 0x5EED);
    print_row("CAFC-CH (hub-seeded)", &hub_seeded);

    println!(
        "\nentropy ratio (HAC-seeded / hub-seeded): {:.2} (paper: ~1.6); \
         F delta: {:.3} vs {:.3}",
        hac_seeded.entropy / hub_seeded.entropy.max(1e-9),
        hac_seeded.f_measure,
        hub_seeded.f_measure
    );
    cafc_bench::write_json(
        "exp_hac_seeding",
        &[("hac_seeded", hac_seeded), ("hub_seeded", hub_seeded)],
    );
}
