//! **§4.2 error analysis** — where do the mistakes live?
//!
//! Paper: in the best configuration, 17 of 454 pages were incorrectly
//! clustered; most confusions fall between Music and Movie (large
//! vocabulary overlap; some real forms search both); only one of the
//! misclustered pages was a single-attribute form.

use cafc::FeatureConfig;
use cafc_bench::{print_header, run_cafc_ch, Bench};
use cafc_corpus::Domain;
use cafc_eval::{misclustered, ConfusionMatrix};
use serde::Serialize;

#[derive(Serialize)]
struct ErrorReport {
    misclustered: usize,
    total: usize,
    misclustered_single_attribute: usize,
    music_movie_confusions: usize,
    top_confused_pair: (String, String, usize),
}

fn main() {
    print_header(
        "§4.2: error analysis of the best configuration (CAFC-CH, FC+PC)",
        "17/454 misclustered; Music/Movie dominate; only 1 single-attribute mistake",
    );
    let bench = Bench::paper_scale();
    let space = bench.space(FeatureConfig::combined());
    let (q, out) = run_cafc_ch(&bench, &space, 8, 0xE44);
    println!("entropy {:.3}, F {:.3}\n", q.entropy, q.f_measure);

    let clusters = out.outcome.partition.clusters();
    let matrix = ConfusionMatrix::new(clusters, &bench.labels);
    println!("{}", matrix.to_table());

    let wrong = misclustered(clusters, &bench.labels);
    println!(
        "misclustered pages: {} / {}",
        wrong.len(),
        bench.labels.len()
    );
    let wrong_single = wrong
        .iter()
        .filter(|&&i| bench.web.form_pages[i].single_attribute)
        .count();
    println!(
        "  of which single-attribute: {wrong_single} ({} single-attribute pages total)",
        bench
            .web
            .form_pages
            .iter()
            .filter(|r| r.single_attribute)
            .count()
    );

    // Cross-domain confusion counts between every ordered pair.
    let classes = matrix.classes().to_vec();
    let mut pairs: Vec<(Domain, Domain, usize)> = Vec::new();
    for (ai, &a) in classes.iter().enumerate() {
        for (bi, &b) in classes.iter().enumerate() {
            if ai != bi {
                let n = matrix.confused_into(ai, bi);
                if n > 0 {
                    pairs.push((a, b, n));
                }
            }
        }
    }
    pairs.sort_by_key(|&(_, _, n)| std::cmp::Reverse(n));
    println!("\ntop confusions (class -> majority of host cluster):");
    for &(a, b, n) in pairs.iter().take(6) {
        println!("  {:>8} -> {:<8} {n}", a.name(), b.name());
    }

    let music_movie: usize = pairs
        .iter()
        .filter(|&&(a, b, _)| {
            matches!(
                (a, b),
                (Domain::Music, Domain::Movie) | (Domain::Movie, Domain::Music)
            )
        })
        .map(|&(_, _, n)| n)
        .sum();
    println!(
        "\nMusic<->Movie confusions: {music_movie} of {} total",
        wrong.len()
    );

    let top = pairs
        .first()
        .map(|&(a, b, n)| (a.name().to_owned(), b.name().to_owned(), n));
    cafc_bench::write_json(
        "exp_error_analysis",
        &ErrorReport {
            misclustered: wrong.len(),
            total: bench.labels.len(),
            misclustered_single_attribute: wrong_single,
            music_movie_confusions: music_movie,
            top_confused_pair: top.unwrap_or(("none".into(), "none".into(), 0)),
        },
    );
}
