//! **Figure 3** — Entropy obtained by CAFC-CH while varying the minimum
//! cardinality of hub clusters (x-axis "> 2" … "> 11", i.e. minimum
//! cardinality 3…12), with the CAFC-C entropy shown for comparison.
//!
//! Paper's shape: a U — small hub clusters (cardinality < 7) carry too
//! little evidence, very large minimums lose domains (only Air/Hotel have
//! ≥ 14-page hubs); the best entropy sits around minimum cardinality 7–8;
//! CAFC-CH stays below CAFC-C at every setting. Pruning small clusters
//! also collapses the greedy-selection search space (3,450 → 164 in the
//! paper).

use cafc::FeatureConfig;
use cafc_bench::{print_header, run_cafc_c_avg, run_cafc_ch, Bench};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    min_cardinality: usize,
    entropy: f64,
    f_measure: f64,
    candidate_clusters: usize,
    hub_seeds: usize,
    padded: usize,
}

fn main() {
    print_header(
        "Figure 3: CAFC-CH entropy vs minimum hub-cluster cardinality",
        "U-shape with the sweet spot around 7-8; CAFC-CH < CAFC-C everywhere",
    );
    let bench = Bench::paper_scale();
    let space = bench.space(FeatureConfig::combined());

    let baseline = run_cafc_c_avg(&space, &bench.labels, 0xF163);
    println!(
        "CAFC-C reference entropy: {:.3} (F {:.3})\n",
        baseline.entropy, baseline.f_measure
    );
    println!(
        "{:>8} {:>10} {:>8} {:>12} {:>10} {:>7}",
        "min card", "entropy", "F", "candidates", "hub seeds", "padded"
    );

    let mut rows = Vec::new();
    for min_cardinality in 2..=12 {
        let (q, out) = run_cafc_ch(&bench, &space, min_cardinality, 0xF163C);
        println!(
            "{:>8} {:>10.3} {:>8.3} {:>12} {:>10} {:>7}",
            min_cardinality,
            q.entropy,
            q.f_measure,
            out.hub_stats.clusters_after_filter,
            out.hub_seeds,
            out.padded_seeds
        );
        rows.push(Row {
            min_cardinality,
            entropy: q.entropy,
            f_measure: q.f_measure,
            candidate_clusters: out.hub_stats.clusters_after_filter,
            hub_seeds: out.hub_seeds,
            padded: out.padded_seeds,
        });
    }

    let below = rows.iter().filter(|r| r.entropy < baseline.entropy).count();
    println!(
        "\nCAFC-CH below the CAFC-C reference at {below}/{} cardinality settings",
        rows.len()
    );
    cafc_bench::write_json("fig3_hub_cardinality", &rows);
}
