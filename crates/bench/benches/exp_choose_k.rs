//! **Extension (ours)** — choosing `k` without gold labels.
//!
//! The paper fixes `k = 8` (the gold domain count). A deployed system must
//! discover it: this bench sweeps `k` from 2 to 16 with CAFC-CH, scoring
//! each clustering by mean silhouette (no labels used), and checks whether
//! the silhouette-optimal `k` recovers the true domain count.

use cafc::{cafc_ch, CafcChConfig, FeatureConfig};
use cafc_bench::{print_header, quality, Bench};
use cafc_cluster::mean_silhouette;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    k: usize,
    silhouette: f64,
    entropy: f64,
    f_measure: f64,
}

fn main() {
    print_header(
        "Extension: silhouette-based selection of k (CAFC-CH sweep, k = 2..16)",
        "the unsupervised optimum should land at (or near) the true k = 8",
    );
    let bench = Bench::paper_scale();
    let space = bench.space(FeatureConfig::combined());

    println!(
        "{:>4} {:>12} {:>10} {:>8}",
        "k", "silhouette", "entropy", "F"
    );
    let mut rows = Vec::new();
    for k in 2..=16 {
        let config = CafcChConfig::paper_default(k);
        let mut rng = StdRng::seed_from_u64(0xC0);
        let out = cafc_ch(&bench.web.graph, &bench.targets, &space, &config, &mut rng);
        // A degenerate partition (undefined silhouette) ranks below every
        // real score.
        let sil = mean_silhouette(&space, &out.outcome.partition).unwrap_or(-1.0);
        let q = quality(&out.outcome.partition, &bench.labels);
        println!(
            "{:>4} {:>12.4} {:>10.3} {:>8.3}",
            k, sil, q.entropy, q.f_measure
        );
        rows.push(Row {
            k,
            silhouette: sil,
            entropy: q.entropy,
            f_measure: q.f_measure,
        });
    }

    let best = rows
        .iter()
        .max_by(|a, b| a.silhouette.partial_cmp(&b.silhouette).expect("finite"))
        .expect("rows");
    println!(
        "\nsilhouette-optimal k = {} (true domain count: 8){}",
        best.k,
        if (7..=9).contains(&best.k) {
            " -> recovered"
        } else {
            ""
        }
    );
    cafc_bench::write_json("exp_choose_k", &rows);
}
