//! **Table 1** — Relationship between form and page sizes: the average
//! number of terms in the page *outside* the form, for different
//! form-size intervals.
//!
//! Paper's rows (partially legible in the source): pages with small forms
//! are content-rich; [10,50) → 131, [50,100) → 76, [100,200) → 83; forms
//! with ≥200 terms sit in pages with little other content. This
//! anticorrelation is the paper's argument for combining FC and PC: "when
//! FC is not sufficient ... PC has more information that may compensate,
//! and vice-versa".

use cafc_bench::{print_header, Bench};
use cafc_corpus::table1;

fn main() {
    print_header(
        "Table 1: average page terms outside the form, by form size",
        "anticorrelation; mid rows ~131 / 76 / 83; >=200-term forms in sparse pages",
    );
    let bench = Bench::paper_scale();
    let htmls: Vec<&str> = bench
        .targets
        .iter()
        .map(|&p| bench.web.graph.html(p).expect("form pages carry HTML"))
        .collect();
    let rows = table1(htmls.iter().copied());

    println!(
        "{:<12} {:>8} {:>22}",
        "form size", "pages", "avg page terms"
    );
    for row in &rows {
        println!(
            "{:<12} {:>8} {:>22.1}",
            row.bin, row.pages, row.avg_page_terms
        );
    }

    let tiny = rows.first().expect("five bins");
    let huge = rows.last().expect("five bins");
    println!(
        "\nanticorrelation check: tiny-form pages carry {:.1}x the outside-form text of \
         huge-form pages",
        tiny.avg_page_terms / huge.avg_page_terms.max(1.0)
    );

    let json: Vec<(String, usize, f64)> = rows
        .iter()
        .map(|r| (r.bin.to_owned(), r.pages, r.avg_page_terms))
        .collect();
    cafc_bench::write_json("table1_form_page_sizes", &json);
}
