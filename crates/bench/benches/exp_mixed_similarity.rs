//! **Ablation (DESIGN.md §5.5)** — reinforcement composition vs a single
//! mixed similarity.
//!
//! The paper rejects adding a link term to Equation 3 because "it can be
//! hard to determine appropriate weights for each measure" (§3.1), and
//! composes the evidence in two phases instead. This bench implements the
//! rejected design (`sim = α·text + (1−α)·link`, k-means over it, averaged
//! over random seeds) across a sweep of α, and compares the *best* α
//! against CAFC-CH. The claim holds if CAFC-CH matches or beats every α
//! without having any weight to tune.

use cafc::baseline::MixedSimilaritySpace;
use cafc::{cafc_c as kmeans_random, FeatureConfig, KMeansOptions};
use cafc_bench::{mean_quality, print_header, print_row, quality, run_cafc_ch, Bench, K};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    print_header(
        "Ablation: mixed text+link similarity (rejected design) vs CAFC-CH",
        "CAFC-CH should match/beat the best hand-tuned alpha without tuning",
    );
    let bench = Bench::paper_scale();
    let text = bench.space(FeatureConfig::combined());

    let mut results = Vec::new();
    for alpha in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let mixed = MixedSimilaritySpace::new(text, &bench.web.graph, &bench.targets, 100, alpha);
        let qs: Vec<_> = (0..10)
            .map(|run| {
                let mut rng = StdRng::seed_from_u64(0xA1FA + run);
                let seeds = cafc_cluster::random_singleton_seeds(&mixed, K, &mut rng);
                let out = cafc_cluster::kmeans(&mixed, &seeds, &KMeansOptions::default());
                quality(&out.partition, &bench.labels)
            })
            .collect();
        let q = mean_quality(&qs);
        print_row(&format!("mixed alpha={alpha:.2}"), &q);
        results.push((format!("alpha={alpha:.2}"), q));
    }

    // Reference points: pure-text CAFC-C and CAFC-CH.
    let mut rng = StdRng::seed_from_u64(0xA1FA);
    let c = kmeans_random(&text, K, &KMeansOptions::default(), &mut rng);
    let c_q = quality(&c.partition, &bench.labels);
    print_row("CAFC-C (one run)", &c_q);
    let (ch, _) = run_cafc_ch(&bench, &text, 8, 0xA1FA);
    print_row("CAFC-CH", &ch);
    results.push(("cafc_ch".into(), ch));

    let best_alpha = results
        .iter()
        .filter(|(n, _)| n.starts_with("alpha"))
        .min_by(|a, b| {
            a.1.entropy
                .partial_cmp(&b.1.entropy)
                .expect("finite entropies")
        })
        .expect("non-empty sweep");
    println!(
        "\nbest mixed alpha: {} (entropy {:.3}) vs CAFC-CH entropy {:.3} -> reinforcement {}",
        best_alpha.0,
        best_alpha.1.entropy,
        ch.entropy,
        if ch.entropy <= best_alpha.1.entropy + 0.02 {
            "CONFIRMED"
        } else {
            "NOT confirmed"
        }
    );
    cafc_bench::write_json("exp_mixed_similarity", &results);
}
