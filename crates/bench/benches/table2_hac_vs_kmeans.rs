//! **Table 2** — HAC versus k-means, each with and without hub seeding.
//!
//! Paper's values: k-means entropy 0.56 → 0.15 with hubs; HAC 0.52 → 0.27.
//! Hubs help both strategies; k-means benefits more because HAC makes
//! local merge decisions whose early mistakes persist through the
//! agglomeration, even from high-quality hub seeds.

use cafc::{select_hub_clusters, CafcChConfig, FeatureConfig, HacOptions, KMeansOptions, Linkage};
use cafc_bench::{disjoint_seeds, print_header, print_row, quality, run_cafc_c_avg, Bench, K};
use cafc_cluster::hac;

fn main() {
    print_header(
        "Table 2: HAC vs k-means under CAFC-C and CAFC-CH",
        "k-means 0.56 -> 0.15 entropy with hubs; HAC 0.52 -> 0.27; k-means+hubs best",
    );
    let bench = Bench::paper_scale();
    let space = bench.space(FeatureConfig::combined());
    let mut rows: Vec<(String, cafc_bench::Quality)> = Vec::new();

    // CAFC-C (k-means, random seeds, averaged).
    let c_kmeans = run_cafc_c_avg(&space, &bench.labels, 0x7AB2);
    print_row("CAFC-C  (k-means)", &c_kmeans);
    rows.push(("CAFC-C k-means".into(), c_kmeans));

    // CAFC-C (HAC from singletons).
    let hac_opts = HacOptions {
        target_clusters: K,
        linkage: Linkage::Average,
    };
    let p = hac(&space, &[], &hac_opts);
    let c_hac = quality(&p, &bench.labels);
    print_row("CAFC-C  (HAC)", &c_hac);
    rows.push(("CAFC-C HAC".into(), c_hac));

    // Shared hub seeds (Algorithm 3, min cardinality 8).
    let config = CafcChConfig::paper_default(K);
    let (seeds, _, _) = select_hub_clusters(&bench.web.graph, &bench.targets, &space, &config);

    // CAFC-CH (k-means from hub seeds).
    let out = cafc_cluster::kmeans(&space, &seeds, &KMeansOptions::default());
    let ch_kmeans = quality(&out.partition, &bench.labels);
    print_row("CAFC-CH (k-means)", &ch_kmeans);
    rows.push(("CAFC-CH k-means".into(), ch_kmeans));

    // CAFC-CH (HAC started from the hub clusters). HAC needs a disjoint
    // starting partition; overlapping seed members keep their first home.
    let initial = disjoint_seeds(&seeds);
    let p = hac(&space, &initial, &hac_opts);
    let ch_hac = quality(&p, &bench.labels);
    print_row("CAFC-CH (HAC)", &ch_hac);
    rows.push(("CAFC-CH HAC".into(), ch_hac));

    println!(
        "\nhub benefit: k-means entropy {:.3} -> {:.3}; HAC {:.3} -> {:.3}",
        c_kmeans.entropy, ch_kmeans.entropy, c_hac.entropy, ch_hac.entropy
    );
    cafc_bench::write_json("table2_hac_vs_kmeans", &rows);
}
