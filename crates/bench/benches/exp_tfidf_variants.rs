//! **Ablation (ours)** — TF/IDF weighting-scheme variants.
//!
//! Equation 1 picks raw TF with plain `log(N/n_i)` IDF. This bench makes
//! that an empirical choice: it sweeps TF schemes (raw, log, binary,
//! max-norm) and IDF schemes (plain, smooth, probabilistic, none) under
//! CAFC-CH FC+PC, keeping everything else fixed.

use cafc::{FeatureConfig, FormPageCorpus, FormPageSpace, IdfScheme, ModelOptions, TfScheme};
use cafc_bench::{print_header, print_row, run_cafc_ch, Bench};

fn main() {
    print_header(
        "Ablation: TF/IDF scheme variants (CAFC-CH, FC+PC)",
        "the paper's raw TF + plain IDF should be competitive; idf=none should collapse",
    );
    let bench = Bench::paper_scale();

    let tf_schemes = [
        ("raw", TfScheme::Raw),
        ("log", TfScheme::Log),
        ("binary", TfScheme::Binary),
        ("maxnorm", TfScheme::MaxNorm),
    ];
    let idf_schemes = [
        ("plain", IdfScheme::Plain),
        ("smooth", IdfScheme::Smooth),
        ("prob", IdfScheme::Probabilistic),
        ("none", IdfScheme::None),
    ];

    let mut rows = Vec::new();
    for &(tf_name, tf) in &tf_schemes {
        for &(idf_name, idf) in &idf_schemes {
            let corpus = FormPageCorpus::from_graph(
                &bench.web.graph,
                &bench.targets,
                &ModelOptions::new().with_tf(tf).with_idf(idf),
            );
            let space = FormPageSpace::new(&corpus, FeatureConfig::combined());
            let (q, _) = run_cafc_ch(&bench, &space, 8, 0x7F1D);
            print_row(&format!("tf={tf_name:<8} idf={idf_name:<6}"), &q);
            rows.push((format!("{tf_name}/{idf_name}"), q));
        }
    }

    let baseline = rows
        .iter()
        .find(|(n, _)| n == "raw/plain")
        .expect("baseline row")
        .1;
    let best = rows
        .iter()
        .min_by(|a, b| a.1.entropy.partial_cmp(&b.1.entropy).expect("finite"))
        .expect("rows");
    println!(
        "\npaper's raw/plain: entropy {:.3}; best variant {} at {:.3}",
        baseline.entropy, best.0, best.1.entropy
    );
    cafc_bench::write_json("exp_tfidf_variants", &rows);
}
