//! **§3.1 / §3.3** — Hub-cluster statistics.
//!
//! Paper: 454 form pages × ≤100 backlinks produced 3,450 distinct
//! co-citation sets; 69 % homogeneous; homogeneous clusters present in all
//! 8 domains; AltaVista returned no backlinks for >15 % of forms (root
//! fallback used); pruning cardinality <8 left 164 clusters; clusters with
//! ≥14 pages covered only Air and Hotel.

use cafc_bench::{print_header, Bench};
use cafc_webgraph::hub::{domains_covered, homogeneity, hub_clusters};
use cafc_webgraph::HubClusterOptions;
use serde::Serialize;

#[derive(Serialize)]
struct Stats {
    distinct_clusters: usize,
    homogeneous_fraction: f64,
    domains_with_homogeneous_cluster: usize,
    pages_without_backlinks: usize,
    pages_uncovered: usize,
    clusters_at_min_8: usize,
    domains_in_large_clusters: usize,
}

fn main() {
    print_header(
        "§3.1/§3.3: hub-cluster statistics",
        "3,450 distinct clusters; 69% homogeneous; >15% pages w/o backlinks; 164 at card>=8",
    );
    let bench = Bench::paper_scale();

    let (all, stats) = hub_clusters(
        &bench.web.graph,
        &bench.targets,
        &HubClusterOptions {
            min_cardinality: 1,
            ..HubClusterOptions::default()
        },
    );
    let homog = homogeneity(&all, &bench.labels).unwrap_or(0.0);
    let domains = domains_covered(&all, &bench.labels);
    println!(
        "distinct hub clusters:            {}",
        stats.distinct_clusters
    );
    println!("homogeneous:                      {:.1}%", homog * 100.0);
    println!("domains with homogeneous cluster: {domains} / 8");
    println!(
        "pages without usable backlinks:   {} / {} ({:.1}%)",
        stats.targets_without_backlinks,
        stats.total_targets,
        100.0 * stats.targets_without_backlinks as f64 / stats.total_targets as f64
    );
    println!(
        "pages uncovered after fallback:   {}",
        stats.targets_uncovered
    );

    let (at8, s8) = hub_clusters(
        &bench.web.graph,
        &bench.targets,
        &HubClusterOptions::default(),
    );
    println!(
        "clusters at min cardinality 8:    {}",
        s8.clusters_after_filter
    );

    // The paper's observation about very large clusters: ≥14 members cover
    // few domains.
    let large: Vec<_> = at8.iter().filter(|c| c.cardinality() >= 14).collect();
    let mut large_domains: Vec<_> = large
        .iter()
        .flat_map(|c| c.members.iter().map(|&m| bench.labels[m]))
        .collect();
    large_domains.sort();
    large_domains.dedup();
    println!(
        "clusters with >=14 pages:         {} (touching {} domains)",
        large.len(),
        large_domains.len()
    );
    // Majority domains of large homogeneous clusters:
    let large_homog = large
        .iter()
        .filter(|c| {
            let first = bench.labels[c.members[0]];
            c.members.iter().all(|&m| bench.labels[m] == first)
        })
        .count();
    println!("  of which homogeneous:           {large_homog}");

    cafc_bench::write_json(
        "exp_hub_stats",
        &Stats {
            distinct_clusters: stats.distinct_clusters,
            homogeneous_fraction: homog,
            domains_with_homogeneous_cluster: domains,
            pages_without_backlinks: stats.targets_without_backlinks,
            pages_uncovered: stats.targets_uncovered,
            clusters_at_min_8: s8.clusters_after_filter,
            domains_in_large_clusters: large_domains.len(),
        },
    );
}
