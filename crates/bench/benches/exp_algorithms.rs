//! **Extended Table 2 (ours)** — a wider algorithm bake-off on the same
//! corpus and feature space: random-seeded k-means (CAFC-C), k-means++
//! seeding, bisecting k-means (the paper's reference [31]), HAC (average
//! linkage) and CAFC-CH. All averaged over 10 runs where seeding is
//! random.

use cafc::{cafc_c, FeatureConfig, KMeansOptions};
use cafc_bench::{mean_quality, print_header, print_row, quality, run_cafc_ch, Bench, K};
use cafc_cluster::{
    bisecting_kmeans, hac_from_singletons, kmeans, kmeanspp_seeds, BisectOptions, HacOptions,
    Linkage,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    print_header(
        "Extended algorithm comparison (FC+PC, k = 8)",
        "CAFC-CH should dominate; kmeans++ and bisecting should beat plain random seeding",
    );
    let bench = Bench::paper_scale();
    let space = bench.space(FeatureConfig::combined());
    let runs = 10u64;
    let mut rows = Vec::new();

    let random = mean_quality(
        &(0..runs)
            .map(|r| {
                let mut rng = StdRng::seed_from_u64(r);
                quality(
                    &cafc_c(&space, K, &KMeansOptions::default(), &mut rng).partition,
                    &bench.labels,
                )
            })
            .collect::<Vec<_>>(),
    );
    print_row("k-means random (CAFC-C)", &random);
    rows.push(("kmeans_random", random));

    let pp = mean_quality(
        &(0..runs)
            .map(|r| {
                let mut rng = StdRng::seed_from_u64(r);
                let seeds = kmeanspp_seeds(&space, K, &mut rng);
                quality(
                    &kmeans(&space, &seeds, &KMeansOptions::default()).partition,
                    &bench.labels,
                )
            })
            .collect::<Vec<_>>(),
    );
    print_row("k-means++", &pp);
    rows.push(("kmeans_pp", pp));

    let bisect = mean_quality(
        &(0..runs)
            .map(|r| {
                let mut rng = StdRng::seed_from_u64(r);
                let p = bisecting_kmeans(
                    &space,
                    &BisectOptions {
                        target_clusters: K,
                        ..Default::default()
                    },
                    &mut rng,
                );
                quality(&p, &bench.labels)
            })
            .collect::<Vec<_>>(),
    );
    print_row("bisecting k-means [31]", &bisect);
    rows.push(("bisecting", bisect));

    let hac_q = quality(
        &hac_from_singletons(
            &space,
            &HacOptions {
                target_clusters: K,
                linkage: Linkage::Average,
            },
        ),
        &bench.labels,
    );
    print_row("HAC (average linkage)", &hac_q);
    rows.push(("hac_average", hac_q));

    let (ch, _) = run_cafc_ch(&bench, &space, 8, 0xA190);
    print_row("CAFC-CH", &ch);
    rows.push(("cafc_ch", ch));

    println!(
        "\nCAFC-CH beats the best content-only method by {:.1}x on entropy",
        rows.iter()
            .filter(|(n, _)| *n != "cafc_ch")
            .map(|(_, q)| q.entropy)
            .fold(f64::INFINITY, f64::min)
            / ch.entropy.max(1e-9)
    );
    cafc_bench::write_json("exp_algorithms", &rows);
}
