//! **§4.4** — Differentiated LOC weights versus uniform TF-IDF.
//!
//! Paper: running the best configuration (CAFC-CH, FC+PC) with uniform
//! weights moves F from 0.96 to 0.91 and entropy from 0.15 to 0.30 — yet
//! uniform-weight CAFC-CH still beats differentiated-weight CAFC-C.

use cafc::{FeatureConfig, FormPageSpace};
use cafc_bench::{print_header, print_row, run_cafc_c_avg, run_cafc_ch, Bench};

fn main() {
    print_header(
        "§4.4: differentiated LOC weights vs uniform weights (CAFC-CH, FC+PC)",
        "uniform: F 0.96 -> 0.91, entropy 0.15 -> 0.30; uniform CAFC-CH still beats CAFC-C",
    );
    let bench = Bench::paper_scale();

    let diff_space = bench.space(FeatureConfig::combined());
    let (diff, _) = run_cafc_ch(&bench, &diff_space, 8, 0x10C);
    print_row("CAFC-CH differentiated", &diff);

    let uniform_space = FormPageSpace::new(&bench.corpus_uniform, FeatureConfig::combined());
    let (uniform, _) = run_cafc_ch(&bench, &uniform_space, 8, 0x10C);
    print_row("CAFC-CH uniform", &uniform);

    let cafc_c_diff = run_cafc_c_avg(&diff_space, &bench.labels, 0x10C);
    print_row("CAFC-C  differentiated", &cafc_c_diff);

    println!(
        "\nuniform-weight CAFC-CH beats differentiated CAFC-C: {}",
        uniform.entropy < cafc_c_diff.entropy && uniform.f_measure > cafc_c_diff.f_measure
    );
    cafc_bench::write_json(
        "exp_loc_weights",
        &[
            ("cafc_ch_differentiated", diff),
            ("cafc_ch_uniform", uniform),
            ("cafc_c_differentiated", cafc_c_diff),
        ],
    );
}
