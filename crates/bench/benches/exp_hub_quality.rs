//! **§6 extension (ours)** — hub-quality gating.
//!
//! The paper's future work lists "the quality of hub pages" as a feature
//! to exploit. Two label-free quality signals are implemented:
//!
//! 1. *content coherence* — drop candidate hub clusters whose average
//!    pairwise member similarity falls below a threshold
//!    (`CafcChConfig::min_hub_quality`);
//! 2. *link-structural quality* — rank hubs with HITS and restrict the
//!    candidate pool to clusters induced by the top-scoring hubs.

use cafc::{
    cafc_ch, select_hub_clusters, CafcChConfig, FeatureConfig, HubClusterOptions, KMeansOptions,
};
use cafc_bench::{print_header, print_row, quality, Bench, K};
use cafc_cluster::kmeans;
use cafc_webgraph::{hits, hub_clusters, HitsOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    print_header(
        "§6 extension: hub-quality gating (content coherence and HITS)",
        "gating should match or improve the ungated CAFC-CH seeds",
    );
    let bench = Bench::paper_scale();
    let space = bench.space(FeatureConfig::combined());
    let mut rows = Vec::new();

    // Baseline: ungated CAFC-CH.
    let base_cfg = CafcChConfig::paper_default(K);
    let mut rng = StdRng::seed_from_u64(0x9B);
    let base = cafc_ch(
        &bench.web.graph,
        &bench.targets,
        &space,
        &base_cfg,
        &mut rng,
    );
    let base_q = quality(&base.outcome.partition, &bench.labels);
    print_row("ungated", &base_q);
    rows.push(("ungated".to_owned(), base_q));

    // Content-coherence gate at several thresholds.
    for threshold in [0.05, 0.10, 0.15, 0.20] {
        let cfg = base_cfg.clone().with_min_hub_quality(Some(threshold));
        let mut rng = StdRng::seed_from_u64(0x9B);
        let out = cafc_ch(&bench.web.graph, &bench.targets, &space, &cfg, &mut rng);
        let q = quality(&out.outcome.partition, &bench.labels);
        print_row(&format!("coherence >= {threshold:.2}"), &q);
        println!("   [{} candidates rejected]", out.quality_rejected);
        rows.push((format!("coherence_{threshold:.2}"), q));
    }

    // HITS gate: keep only clusters induced by the top-H hubs.
    let scores = hits(&bench.web.graph, &HitsOptions::default());
    let (all_clusters, _) = hub_clusters(
        &bench.web.graph,
        &bench.targets,
        &HubClusterOptions::default(),
    );
    for keep_frac in [0.5, 0.25] {
        let mut ranked: Vec<_> = all_clusters.iter().collect();
        ranked.sort_by(|a, b| {
            scores
                .hub(b.hub)
                .partial_cmp(&scores.hub(a.hub))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let keep = ((ranked.len() as f64 * keep_frac) as usize).max(K);
        let candidates: Vec<Vec<usize>> = ranked
            .iter()
            .take(keep)
            .map(|c| c.members.clone())
            .collect();
        // Greedy selection + k-means over the gated pool.
        let selected = cafc_cluster::greedy_distant_seeds(&space, &candidates, K);
        let seeds: Vec<Vec<usize>> = selected.iter().map(|&i| candidates[i].clone()).collect();
        let out = kmeans(&space, &seeds, &KMeansOptions::default());
        let q = quality(&out.partition, &bench.labels);
        print_row(&format!("HITS top {:.0}%", keep_frac * 100.0), &q);
        rows.push((format!("hits_{keep_frac}"), q));
    }

    // For reference: what select_hub_clusters sees without gating.
    let (seeds, stats, _) =
        select_hub_clusters(&bench.web.graph, &bench.targets, &space, &base_cfg);
    println!(
        "\n[{} candidate clusters at cardinality >= 8; {} selected as seeds]",
        stats.clusters_after_filter,
        seeds.len()
    );
    cafc_bench::write_json("exp_hub_quality", &rows);
}
