//! **Robustness (ours)** — sensitivity to the corpus realization.
//!
//! The paper reports one run over one (real) corpus. Our corpus is a
//! random realization of a calibrated generator, so we can do better:
//! regenerate the web under several seeds and report mean ± range for the
//! headline configurations, demonstrating that the reproduction's
//! conclusions do not hinge on a lucky draw.

use cafc::FeatureConfig;
use cafc_bench::{quality, run_cafc_c_avg, run_cafc_ch, Bench, Quality};
use cafc_corpus::CorpusConfig;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    corpus_seed: u64,
    cafc_c_entropy: f64,
    cafc_c_f: f64,
    cafc_ch_entropy: f64,
    cafc_ch_f: f64,
}

fn main() {
    cafc_bench::print_header(
        "Robustness: headline results across corpus realizations",
        "CAFC-CH must beat CAFC-C under every seed; magnitudes should be stable",
    );
    println!(
        "{:>12} {:>12} {:>8} {:>13} {:>9}",
        "corpus seed", "C entropy", "C F", "CH entropy", "CH F"
    );
    let mut rows = Vec::new();
    for corpus_seed in [3u64, 11, 22, 33, 44] {
        let bench = Bench::with_config(&CorpusConfig {
            seed: corpus_seed,
            ..Default::default()
        });
        let space = bench.space(FeatureConfig::combined());
        let c = run_cafc_c_avg(&space, &bench.labels, 0x5E);
        let (ch, _) = run_cafc_ch(&bench, &space, 8, 0x5E);
        println!(
            "{:>12} {:>12.3} {:>8.3} {:>13.3} {:>9.3}",
            corpus_seed, c.entropy, c.f_measure, ch.entropy, ch.f_measure
        );
        rows.push(Row {
            corpus_seed,
            cafc_c_entropy: c.entropy,
            cafc_c_f: c.f_measure,
            cafc_ch_entropy: ch.entropy,
            cafc_ch_f: ch.f_measure,
        });
        // The qualitative claim must hold per-seed, not just on average.
        assert!(
            ch.entropy < c.entropy && ch.f_measure > c.f_measure,
            "hub benefit violated at corpus seed {corpus_seed}"
        );
        let _: Quality = quality(
            &cafc_bench::run_cafc_c_once(&space, 0), // exercise the one-shot path too
            &bench.labels,
        );
    }
    let mean_ch: f64 = rows.iter().map(|r| r.cafc_ch_entropy).sum::<f64>() / rows.len() as f64;
    let spread = rows
        .iter()
        .map(|r| r.cafc_ch_entropy)
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), v| {
            (lo.min(v), hi.max(v))
        });
    println!(
        "\nCAFC-CH entropy across realizations: mean {:.3}, range [{:.3}, {:.3}]",
        mean_ch, spread.0, spread.1
    );
    cafc_bench::write_json("exp_seed_sensitivity", &rows);
}
