//! **§6 future work** — adding in-link anchor text as a third feature
//! space ("a richer set of features provided by the hyperlink structure,
//! e.g., anchor text").
//!
//! The paper does not evaluate this; we implement it and measure whether
//! anchor text helps on top of FC+PC, under both CAFC-C and CAFC-CH.

use cafc::{FeatureConfig, FormPageSpace};
use cafc_bench::{print_header, print_row, run_cafc_c_avg, run_cafc_ch, Bench};

fn main() {
    print_header(
        "§6 extension: FC+PC+anchor-text feature space",
        "not evaluated in the paper; anchor text should help CAFC-C in particular",
    );
    let bench = Bench::paper_scale();

    let plain = FormPageSpace::new(&bench.corpus_anchors, FeatureConfig::combined());
    let with_anchor = FormPageSpace::new(
        &bench.corpus_anchors,
        FeatureConfig::WithAnchors {
            c1: 1.0,
            c2: 1.0,
            c3: 1.0,
        },
    );

    let mut results = Vec::new();
    let c_plain = run_cafc_c_avg(&plain, &bench.labels, 0xA2C);
    print_row("CAFC-C  FC+PC", &c_plain);
    results.push(("cafc_c_fc_pc", c_plain));
    let c_anchor = run_cafc_c_avg(&with_anchor, &bench.labels, 0xA2C);
    print_row("CAFC-C  FC+PC+anchor", &c_anchor);
    results.push(("cafc_c_with_anchor", c_anchor));

    let (ch_plain, _) = run_cafc_ch(&bench, &plain, 8, 0xA2C);
    print_row("CAFC-CH FC+PC", &ch_plain);
    results.push(("cafc_ch_fc_pc", ch_plain));
    let (ch_anchor, _) = run_cafc_ch(&bench, &with_anchor, 8, 0xA2C);
    print_row("CAFC-CH FC+PC+anchor", &ch_anchor);
    results.push(("cafc_ch_with_anchor", ch_anchor));

    println!(
        "\nanchor text changes CAFC-C entropy by {:+.3} and CAFC-CH entropy by {:+.3}",
        c_anchor.entropy - c_plain.entropy,
        ch_anchor.entropy - ch_plain.entropy
    );
    cafc_bench::write_json("exp_anchor_features", &results);
}
