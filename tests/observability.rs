//! Observability contract of the pipeline (DESIGN.md §11):
//!
//! 1. Installing a metrics sink must not perturb the clustering — the
//!    partition is bit-identical with and without an [`Obs`] handle.
//! 2. Under a logical clock ([`ManualClock`]), the rendered snapshot is
//!    **byte-stable across execution policies**: the same seed produces
//!    the same JSON under `Serial` and `Parallel { threads: 7 }`. Nothing
//!    thread-schedule-dependent may leak into library-level metrics.
//! 3. One instrumented run covers every pipeline stage: ingestion, corpus
//!    construction, seeding and clustering all leave metrics behind.

use cafc::prelude::*;
use cafc::{CafcChConfig, HubClusterOptions, ManualClock, Obs};
use cafc_corpus::{generate, mutate_page, page_rng, CorpusConfig, Mutation, SyntheticWeb};
use std::sync::Arc;

fn web() -> SyntheticWeb {
    generate(&CorpusConfig::small(7))
}

/// An enabled handle on a logical clock that never ticks: every duration is
/// exactly 0, so snapshots cannot depend on wall clock or thread schedule.
fn logical_obs() -> Obs {
    Obs::with_clock(Arc::new(ManualClock::new()))
}

fn graph_pipeline(policy: ExecPolicy, obs: Obs) -> Pipeline {
    Pipeline::builder()
        .algorithm(Algorithm::CafcCh(CafcChConfig::paper_default(8).with_hub(
            HubClusterOptions {
                min_cardinality: 4,
                ..Default::default()
            },
        )))
        .exec(policy)
        .seed(2)
        .obs(obs)
        .build()
}

/// Same seed, same corpus, different `ExecPolicy` → byte-identical JSON.
#[test]
fn snapshot_json_identical_across_policies() {
    let web = web();
    let targets = web.form_page_ids();
    let render = |policy: ExecPolicy| {
        let obs = logical_obs();
        graph_pipeline(policy, obs.clone())
            .run_graph(&web.graph, &targets)
            .expect("graph input satisfies CAFC-CH");
        obs.snapshot().render_json()
    };
    let serial = render(ExecPolicy::Serial);
    let mut policies = vec![
        ExecPolicy::Parallel { threads: 1 },
        ExecPolicy::Parallel { threads: 7 },
    ];
    if let Ok(v) = std::env::var("CAFC_TEST_THREADS") {
        let threads: usize = v.parse().expect("CAFC_TEST_THREADS must be a count");
        policies.push(ExecPolicy::Parallel { threads });
    }
    for policy in policies {
        assert_eq!(
            render(policy),
            serial,
            "metrics snapshot diverged under {policy:?}"
        );
    }
}

/// The text rendering is deterministic too (it feeds `--trace`).
#[test]
fn snapshot_text_identical_across_policies() {
    let web = web();
    let targets = web.form_page_ids();
    let render = |policy: ExecPolicy| {
        let obs = logical_obs();
        graph_pipeline(policy, obs.clone())
            .run_graph(&web.graph, &targets)
            .expect("graph input satisfies CAFC-CH");
        obs.snapshot().render_text()
    };
    assert_eq!(
        render(ExecPolicy::Serial),
        render(ExecPolicy::Parallel { threads: 7 })
    );
}

/// A graph run covers corpus construction, hub seeding and the k-means
/// loop; the snapshot must carry metrics from each stage, and the four
/// top-level JSON keys must always be present.
#[test]
fn graph_snapshot_covers_all_stages() {
    let web = web();
    let targets = web.form_page_ids();
    let obs = logical_obs();
    let out = graph_pipeline(ExecPolicy::Serial, obs.clone())
        .run_graph(&web.graph, &targets)
        .expect("graph input satisfies CAFC-CH");
    assert_eq!(out.partition.num_clusters(), 8);
    let json = obs.snapshot().render_json();
    for key in [
        "\"counters\"",
        "\"gauges\"",
        "\"histograms\"",
        "\"spans\"",
        // corpus construction
        "\"corpus.vectorize.items\"",
        "\"corpus.pages\"",
        "\"corpus.terms\"",
        // seeding
        "\"seed.hub_candidates\"",
        "\"seed.hub_seeds\"",
        // clustering
        "\"kmeans.iterations\"",
        "\"kmeans.moved_fraction\"",
        "\"kmeans.converged\"",
        // span tree
        "\"seed.select_hub_clusters\"",
        "\"kmeans.assign\"",
        "\"corpus.tfidf\"",
    ] {
        assert!(json.contains(key), "snapshot missing {key}:\n{json}");
    }
}

/// An HTML run through hardened ingestion records the per-page accounting.
#[test]
fn ingest_snapshot_covers_outcome_counters() {
    let web = web();
    let targets = web.form_page_ids();
    let menu = Mutation::parse_list("all").expect("'all' names the full menu");
    let mutated: Vec<String> = targets
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let html = web.graph.html(*p).unwrap_or("");
            mutate_page(html, &menu, 2, &mut page_rng(5, i))
        })
        .collect();
    let pages: Vec<&str> = mutated.iter().map(String::as_str).collect();

    let obs = logical_obs();
    let out = Pipeline::builder()
        .algorithm(Algorithm::CafcC { k: 8 })
        .ingest_limits(IngestLimits::new())
        .exec(ExecPolicy::Serial)
        .seed(3)
        .obs(obs.clone())
        .build()
        .run_html(&pages)
        .expect("CafcC accepts HTML input");
    let report = out.ingest.expect("limits configured");
    assert!(report.is_accounted());

    let snap = obs.snapshot();
    let json = snap.render_json();
    for key in [
        "\"ingest.pages_total\"",
        "\"ingest.pages_ok\"",
        "\"ingest.pages_degraded\"",
        "\"ingest.pages_quarantined\"",
        "\"ingest.sanitize_us\"",
        "\"ingest.parse_us\"",
        "\"ingest.analyze_us\"",
    ] {
        assert!(json.contains(key), "snapshot missing {key}:\n{json}");
    }
    // The counters must mirror the report exactly.
    let total_line = format!("\"ingest.pages_total\": {}", report.total());
    let ok_line = format!("\"ingest.pages_ok\": {}", report.ok());
    assert!(json.contains(&total_line), "{json}");
    assert!(json.contains(&ok_line), "{json}");
}

/// The disabled handle records nothing — its snapshot is empty even after
/// a full pipeline run.
#[test]
fn disabled_obs_snapshot_stays_empty() {
    let web = web();
    let targets = web.form_page_ids();
    let obs = Obs::disabled();
    graph_pipeline(ExecPolicy::Serial, obs.clone())
        .run_graph(&web.graph, &targets)
        .expect("graph input satisfies CAFC-CH");
    assert!(!obs.is_enabled());
    assert!(obs.snapshot().is_empty());
}
