//! Calibration tests: the synthetic corpus must reproduce the statistics
//! the paper reports for its real-web data (DESIGN.md §2's substitution
//! contract). These run at paper scale, so they are release-friendly but
//! kept to a handful of assertions.

use cafc_corpus::{generate, table1, CorpusConfig};
use cafc_webgraph::hub::{domains_covered, homogeneity, hub_clusters};
use cafc_webgraph::HubClusterOptions;

#[test]
fn paper_scale_corpus_statistics() {
    let web = generate(&CorpusConfig::default());
    let targets = web.form_page_ids();
    let labels = web.labels();

    // 454 pages, 56 single-attribute (§4.1).
    assert_eq!(targets.len(), 454);
    assert_eq!(
        web.form_pages.iter().filter(|r| r.single_attribute).count(),
        56
    );

    // Hub statistics (§3.1): thousands of distinct clusters, ~69 %
    // homogeneous, representative homogeneous clusters in all domains,
    // >15 % of pages without usable backlinks.
    let (clusters, stats) = hub_clusters(
        &web.graph,
        &targets,
        &HubClusterOptions {
            min_cardinality: 1,
            ..Default::default()
        },
    );
    assert!(
        (2500..=4500).contains(&stats.distinct_clusters),
        "distinct clusters {} out of the paper's ballpark",
        stats.distinct_clusters
    );
    let h = homogeneity(&clusters, &labels).expect("clusters exist");
    assert!((0.60..=0.80).contains(&h), "homogeneity {h} not ~69%");
    assert_eq!(domains_covered(&clusters, &labels), 8);
    let frac = stats.targets_without_backlinks as f64 / stats.total_targets as f64;
    assert!(
        (0.12..=0.25).contains(&frac),
        "backlinkless fraction {frac} not >15%"
    );

    // Cardinality filtering shrinks the candidate pool drastically (§3.3).
    let (_, stats8) = hub_clusters(&web.graph, &targets, &HubClusterOptions::default());
    assert!(
        stats8.clusters_after_filter * 4 < stats.distinct_clusters,
        "min-cardinality filter barely pruned: {} of {}",
        stats8.clusters_after_filter,
        stats.distinct_clusters
    );
}

#[test]
fn table1_anticorrelation_at_paper_scale() {
    let web = generate(&CorpusConfig::default());
    let htmls: Vec<&str> = web
        .form_pages
        .iter()
        .map(|r| web.graph.html(r.page).expect("form pages carry HTML"))
        .collect();
    let rows = table1(htmls.iter().copied());
    assert_eq!(rows.iter().map(|r| r.pages).sum::<usize>(), 454);
    // Every bin is populated.
    for row in &rows {
        assert!(row.pages > 0, "bin {} empty", row.bin);
    }
    // Tiny forms sit on content-rich pages; huge forms on sparse ones.
    assert!(rows[0].avg_page_terms > 2.0 * rows[4].avg_page_terms);
    // The middle rows are in the paper's range (131 / 76 / 83 ± generous
    // tolerance: these are averages over random budgets).
    assert!(
        (90.0..=200.0).contains(&rows[1].avg_page_terms),
        "{:?}",
        rows[1]
    );
    assert!(
        (50.0..=130.0).contains(&rows[2].avg_page_terms),
        "{:?}",
        rows[2]
    );
    assert!(
        (50.0..=140.0).contains(&rows[3].avg_page_terms),
        "{:?}",
        rows[3]
    );
}

#[test]
fn generation_is_reproducible() {
    let a = generate(&CorpusConfig::default());
    let b = generate(&CorpusConfig::default());
    assert_eq!(a.graph.len(), b.graph.len());
    assert_eq!(a.graph.num_links(), b.graph.num_links());
    // Spot-check page contents byte-for-byte.
    for i in [0usize, 100, 453] {
        assert_eq!(
            a.graph.html(a.form_pages[i].page),
            b.graph.html(b.form_pages[i].page),
            "page {i} differs between runs"
        );
    }
}
