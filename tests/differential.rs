//! Differential oracles over the core pipeline: pairs of code paths that
//! are contractually equivalent, pinned against each other on *generated*
//! corpora via `cafc_check::check_equiv`. Any disagreement is shrunk to a
//! minimal witness and reported with a replayable `CAFC_CHECK_SEED`.

use cafc::{
    Algorithm, FeatureConfig, FormPageCorpus, FormPageSpace, IngestLimits, KMeansOptions,
    ModelOptions, Pipeline,
};
use cafc_check::corpus::clean_html_corpus;
use cafc_check::gen::{pairs, usizes, Gen};
use cafc_check::{check, check_equiv, require, require_eq, CheckConfig};
use cafc_cluster::Partition;
use cafc_corpus::{mutate_page, page_rng, Mutation};
use cafc_exec::ExecPolicy;
use cafc_obs::Obs;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A generated corpus plus an independent clustering seed.
fn corpus_and_seed() -> Gen<(Vec<String>, usize)> {
    pairs(&clean_html_corpus(3, 6), &usizes(0, 9_999))
}

/// Pipelines run whole k-means clusterings per case; keep the case count
/// modest so the suite stays in test-blink territory.
fn cfg() -> CheckConfig {
    let base = CheckConfig::new();
    let cases = base.cases.min(24);
    base.with_cases(cases)
}

fn run_pipeline(pages: &[String], seed: u64, exec: ExecPolicy, obs: Obs) -> Partition {
    let refs: Vec<&str> = pages.iter().map(String::as_str).collect();
    Pipeline::builder()
        .algorithm(Algorithm::CafcC { k: 2 })
        .seed(seed)
        .exec(exec)
        .obs(obs)
        .build()
        .run_html(&refs)
        .expect("CafcC accepts HTML input")
        .partition
}

/// The `Pipeline` front door and the legacy free-function path
/// (`from_html` → `FormPageSpace` → `cafc_c`) must produce the identical
/// partition for the same seed.
#[test]
fn pipeline_matches_legacy_cafc_c() {
    check_equiv(
        "Pipeline::run_html == from_html + cafc_c",
        &cfg(),
        &corpus_and_seed(),
        |(pages, seed)| run_pipeline(pages, *seed as u64, ExecPolicy::Serial, Obs::disabled()),
        |(pages, seed)| {
            let corpus = FormPageCorpus::from_html(
                pages.iter().map(String::as_str),
                &ModelOptions::default(),
            );
            let space = FormPageSpace::new(&corpus, FeatureConfig::default());
            let mut rng = StdRng::seed_from_u64(*seed as u64);
            cafc::cafc_c(&space, 2, &KMeansOptions::default(), &mut rng).partition
        },
    );
}

/// Execution policy changes wall-clock only: `Serial` and `Parallel { 3 }`
/// produce bit-identical partitions.
#[test]
fn serial_matches_parallel() {
    check_equiv(
        "ExecPolicy::Serial == ExecPolicy::Parallel{3}",
        &cfg(),
        &corpus_and_seed(),
        |(pages, seed)| run_pipeline(pages, *seed as u64, ExecPolicy::Serial, Obs::disabled()),
        |(pages, seed)| {
            run_pipeline(
                pages,
                *seed as u64,
                ExecPolicy::Parallel { threads: 3 },
                Obs::disabled(),
            )
        },
    );
}

/// Observability is read-only: an enabled `Obs` handle never changes the
/// clustering.
#[test]
fn metrics_on_matches_metrics_off() {
    check_equiv(
        "Obs::enabled == Obs::disabled",
        &cfg(),
        &corpus_and_seed(),
        |(pages, seed)| run_pipeline(pages, *seed as u64, ExecPolicy::Serial, Obs::disabled()),
        |(pages, seed)| run_pipeline(pages, *seed as u64, ExecPolicy::Serial, Obs::enabled()),
    );
}

fn mutated(pages: &[String], seed: u64) -> Vec<String> {
    pages
        .iter()
        .enumerate()
        .map(|(i, html)| mutate_page(html, &Mutation::ALL, 2, &mut page_rng(seed, i)))
        .collect()
}

/// Tight enough that mutated pages actually hit the degraded and
/// quarantined outcomes, not just `Ok`.
fn tight_limits() -> IngestLimits {
    IngestLimits::new()
        .with_hard_max_bytes(64 * 1024)
        .with_soft_max_bytes(8 * 1024)
        .with_max_terms(2_000)
}

/// Clean generated corpora ingest losslessly: nothing is quarantined
/// (titleless or form-empty pages may be kept as `Degraded`, but every
/// page survives into the corpus) and accounting balances.
#[test]
fn clean_ingestion_accounts_for_every_page() {
    check!(cfg(), clean_html_corpus(1, 8), |pages: &Vec<String>| {
        let (corpus, report) = FormPageCorpus::from_html_ingest(
            pages.iter().map(String::as_str),
            &ModelOptions::default(),
            &IngestLimits::default(),
        );
        require!(report.is_accounted(), "accounting identity broken");
        require_eq!(report.quarantined(), 0);
        require_eq!(report.ok() + report.degraded(), report.total());
        require_eq!(corpus.len(), pages.len());
        Ok(())
    });
}

/// Adversarially mutated corpora still balance the books:
/// `ok + degraded + quarantined == total` and the built corpus holds
/// exactly the kept pages — no input silently dropped or double-counted.
#[test]
fn mutated_ingestion_accounts_for_every_page() {
    let cases = pairs(&clean_html_corpus(1, 5), &usizes(0, 9_999));
    check!(cfg().with_cases(cfg().cases.min(12)), cases, |(
        pages,
        seed,
    )| {
        let hostile = mutated(pages, *seed as u64);
        let (corpus, report) = FormPageCorpus::from_html_ingest(
            hostile.iter().map(String::as_str),
            &ModelOptions::default(),
            &tight_limits(),
        );
        require!(report.is_accounted(), "accounting identity broken");
        require_eq!(report.total(), pages.len());
        require_eq!(corpus.len(), report.ok() + report.degraded());
        require_eq!(corpus.len(), report.kept.len());
        Ok(())
    });
}

/// Ingestion accounting is execution-policy invariant: the outcome
/// sequence and kept-mapping are identical under `Serial` and
/// `Parallel { 3 }`, even on hostile input.
#[test]
fn ingestion_accounting_is_exec_invariant() {
    let cases = pairs(&clean_html_corpus(1, 5), &usizes(0, 9_999));
    let tally = |pages: &[String], seed: u64, policy: ExecPolicy| {
        let hostile = mutated(pages, seed);
        let (corpus, report) = FormPageCorpus::from_html_ingest_exec(
            hostile.iter().map(String::as_str),
            &ModelOptions::default(),
            &tight_limits(),
            policy,
        );
        (
            report.ok(),
            report.degraded(),
            report.quarantined(),
            report.kept.clone(),
            corpus.len(),
        )
    };
    check_equiv(
        "ingest accounting: Serial == Parallel{3}",
        &cfg().with_cases(cfg().cases.min(12)),
        &cases,
        |(pages, seed)| tally(pages, *seed as u64, ExecPolicy::Serial),
        |(pages, seed)| tally(pages, *seed as u64, ExecPolicy::Parallel { threads: 3 }),
    );
}
