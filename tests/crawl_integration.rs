//! Integration of the acquisition substrates: crawler + classifier feed
//! the clustering pipeline, exactly as in the paper's system context.

use cafc::{cafc_ch, CafcChConfig, FeatureConfig, FormPageCorpus, FormPageSpace, ModelOptions};
use cafc_corpus::{generate, CorpusConfig};
use cafc_crawler::{crawl, CrawlConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn crawler_recovers_the_searchable_corpus() {
    let web = generate(&CorpusConfig::small(21));
    let result = crawl(&web.graph, web.portal, &CrawlConfig::default());
    let gold: Vec<_> = web.form_page_ids();

    // Coverage: nearly all searchable form pages discovered.
    let found = result
        .searchable_form_pages
        .iter()
        .filter(|p| gold.contains(p))
        .count();
    assert!(
        found as f64 >= gold.len() as f64 * 0.9,
        "crawler found {found}/{}",
        gold.len()
    );

    // Precision: nothing outside gold + non-searchable should appear, and
    // non-searchable pages must be mostly rejected.
    let false_accepts = result
        .searchable_form_pages
        .iter()
        .filter(|p| !gold.contains(p))
        .count();
    assert!(
        (false_accepts as f64) < web.non_searchable.len() as f64 * 0.2 + 1.0,
        "{false_accepts} non-searchable pages accepted"
    );
}

#[test]
fn crawled_pages_cluster_like_curated_ones() {
    let web = generate(&CorpusConfig::small(22));
    let crawl_result = crawl(&web.graph, web.portal, &CrawlConfig::default());
    let targets: Vec<_> = crawl_result
        .searchable_form_pages
        .iter()
        .copied()
        .filter(|p| web.form_pages.iter().any(|r| r.page == *p))
        .collect();
    assert!(targets.len() > 40, "not enough crawled pages to cluster");

    let labels: Vec<&str> = targets
        .iter()
        .map(|p| {
            web.form_pages
                .iter()
                .find(|r| r.page == *p)
                .expect("gold record exists")
                .domain
                .name()
        })
        .collect();

    let corpus = FormPageCorpus::from_graph(&web.graph, &targets, &ModelOptions::default());
    let space = FormPageSpace::new(&corpus, FeatureConfig::combined());
    let mut rng = StdRng::seed_from_u64(22);
    let config = CafcChConfig::paper_default(8).with_hub(cafc::HubClusterOptions {
        min_cardinality: 4,
        ..Default::default()
    });
    let result = cafc_ch(&web.graph, &targets, &space, &config, &mut rng);
    let e = cafc_eval::entropy(
        result.outcome.partition.clusters(),
        &labels,
        cafc_eval::EntropyBase::Two,
    );
    assert!(e < 1.2, "entropy over crawled corpus too high: {e}");
}

#[test]
fn crawler_visits_are_bounded_and_unique() {
    let web = generate(&CorpusConfig::small(23));
    let result = crawl(
        &web.graph,
        web.portal,
        &CrawlConfig {
            max_pages: 50,
            ..Default::default()
        },
    );
    assert!(result.visited.len() <= 50);
    let mut v = result.visited.clone();
    v.sort_unstable();
    v.dedup();
    assert_eq!(v.len(), result.visited.len(), "crawler revisited a page");
}
