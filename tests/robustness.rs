//! Failure-injection integration tests: the pipeline must degrade
//! gracefully on pathological inputs — placeholder pages without content,
//! empty documents, pages without forms, enormous inputs — because a real
//! crawl contains all of these.

use cafc::{
    cafc_c, cafc_ch, CafcChConfig, FeatureConfig, FormPageCorpus, FormPageSpace,
    HubClusterOptions, KMeansOptions, ModelOptions,
};
use cafc_webgraph::{Url, WebGraph};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn url(s: &str) -> Url {
    Url::parse(s).expect("test url parses")
}

/// A graph whose "form pages" are a mix of healthy and broken documents.
fn pathological_graph() -> (WebGraph, Vec<cafc_webgraph::PageId>) {
    let mut g = WebGraph::new();
    let healthy1 = g.add_page(
        url("http://ok1.com/f"),
        "<title>Flights</title><p>airfare travel flights</p><form>departure <input name=a></form>"
            .into(),
    );
    let healthy2 = g.add_page(
        url("http://ok2.com/f"),
        "<p>careers employment salary</p><form>keywords <input name=b></form>".into(),
    );
    // No HTML at all (placeholder page).
    let ghost = g.intern(url("http://ghost.com/f"));
    // Empty document.
    let empty = g.add_page(url("http://empty.com/f"), String::new());
    // Document with no form.
    let formless = g.add_page(url("http://formless.com/f"), "<p>just text, no form</p>".into());
    // Malformed tag soup.
    let soup = g.add_page(
        url("http://soup.com/f"),
        "<form><<<select><option>x<div></form></p><input".into(),
    );
    // Huge page (100k of text).
    let huge = g.add_page(
        url("http://huge.com/f"),
        format!("<p>{}</p><form><input name=q></form>", "word ".repeat(20_000)),
    );
    (g, vec![healthy1, healthy2, ghost, empty, formless, soup, huge])
}

#[test]
fn model_construction_never_panics_on_broken_pages() {
    let (g, targets) = pathological_graph();
    let corpus = FormPageCorpus::from_graph(&g, &targets, &ModelOptions::default());
    assert_eq!(corpus.len(), targets.len());
    // Broken pages produce empty or tiny vectors, not crashes.
    assert!(corpus.pc[2].is_empty(), "ghost page must have an empty PC vector");
    assert!(corpus.pc[3].is_empty(), "empty page must have an empty PC vector");
}

#[test]
fn clustering_handles_empty_vectors() {
    let (g, targets) = pathological_graph();
    let corpus = FormPageCorpus::from_graph(&g, &targets, &ModelOptions::default());
    let space = FormPageSpace::new(&corpus, FeatureConfig::combined());
    let mut rng = StdRng::seed_from_u64(1);
    let out = cafc_c(&space, 3, &KMeansOptions::default(), &mut rng);
    assert_eq!(out.partition.num_assigned(), targets.len());
}

#[test]
fn cafc_ch_without_any_backlinks_pads_seeds() {
    let (g, targets) = pathological_graph();
    let corpus = FormPageCorpus::from_graph(&g, &targets, &ModelOptions::default());
    let space = FormPageSpace::new(&corpus, FeatureConfig::combined());
    let config = CafcChConfig {
        k: 3,
        hub: HubClusterOptions { min_cardinality: 1, ..Default::default() },
        kmeans: KMeansOptions::default(),
        min_hub_quality: None,
    };
    let mut rng = StdRng::seed_from_u64(2);
    let out = cafc_ch(&g, &targets, &space, &config, &mut rng);
    assert_eq!(out.hub_seeds, 0, "no hubs exist in this graph");
    assert_eq!(out.padded_seeds, 3);
    assert_eq!(out.outcome.partition.num_assigned(), targets.len());
}

#[test]
fn anchor_extension_tolerates_linkless_pages() {
    let (g, targets) = pathological_graph();
    let corpus = FormPageCorpus::from_graph_with_anchors(&g, &targets, &ModelOptions::default());
    assert!(corpus.anchor.iter().all(cafc_vsm::SparseVector::is_empty));
}

#[test]
fn single_page_corpus() {
    let mut g = WebGraph::new();
    let p = g.add_page(url("http://solo.com/f"), "<form>q <input name=q></form>".into());
    let corpus = FormPageCorpus::from_graph(&g, &[p], &ModelOptions::default());
    let space = FormPageSpace::new(&corpus, FeatureConfig::combined());
    let mut rng = StdRng::seed_from_u64(3);
    let out = cafc_c(&space, 1, &KMeansOptions::default(), &mut rng);
    assert_eq!(out.partition.clusters(), &[vec![0]]);
}

#[test]
fn identical_pages_cluster_together() {
    let mut g = WebGraph::new();
    let html = "<p>airfare flights travel</p><form>departure <input name=a></form>";
    let distinct = "<p>careers salary employment</p><form>keywords <input name=b></form>";
    let mut targets = Vec::new();
    for i in 0..4 {
        targets.push(g.add_page(url(&format!("http://dup{i}.com/f")), html.into()));
    }
    targets.push(g.add_page(url("http://other.com/f"), distinct.into()));
    let corpus = FormPageCorpus::from_graph(&g, &targets, &ModelOptions::default());
    let space = FormPageSpace::new(&corpus, FeatureConfig::combined());
    let mut rng = StdRng::seed_from_u64(4);
    let out = cafc_c(&space, 2, &KMeansOptions::default(), &mut rng);
    // The four duplicates must share a cluster.
    let assignments = out.partition.assignments();
    let first = assignments[0];
    assert!(assignments[..4].iter().all(|&a| a == first), "{assignments:?}");
}
