//! Failure-injection integration tests: the pipeline must degrade
//! gracefully on pathological inputs — placeholder pages without content,
//! empty documents, pages without forms, enormous inputs — because a real
//! crawl contains all of these.

use cafc::{
    cafc_c, cafc_ch, CafcChConfig, FeatureConfig, FormPageCorpus, FormPageSpace, HubClusterOptions,
    KMeansOptions, ModelOptions,
};
use cafc_crawler::{
    crawl_resilient, AbandonReason, BreakerConfig, FetchError, FetchResponse, Fetcher,
    GraphFetcher, ResilientConfig, RetryPolicy,
};
use cafc_webgraph::{PageId, Url, WebGraph};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

fn url(s: &str) -> Url {
    Url::parse(s).expect("test url parses")
}

/// A graph whose "form pages" are a mix of healthy and broken documents.
fn pathological_graph() -> (WebGraph, Vec<cafc_webgraph::PageId>) {
    let mut g = WebGraph::new();
    let healthy1 = g.add_page(
        url("http://ok1.com/f"),
        "<title>Flights</title><p>airfare travel flights</p><form>departure <input name=a></form>"
            .into(),
    );
    let healthy2 = g.add_page(
        url("http://ok2.com/f"),
        "<p>careers employment salary</p><form>keywords <input name=b></form>".into(),
    );
    // No HTML at all (placeholder page).
    let ghost = g.intern(url("http://ghost.com/f"));
    // Empty document.
    let empty = g.add_page(url("http://empty.com/f"), String::new());
    // Document with no form.
    let formless = g.add_page(
        url("http://formless.com/f"),
        "<p>just text, no form</p>".into(),
    );
    // Malformed tag soup.
    let soup = g.add_page(
        url("http://soup.com/f"),
        "<form><<<select><option>x<div></form></p><input".into(),
    );
    // Huge page (100k of text).
    let huge = g.add_page(
        url("http://huge.com/f"),
        format!(
            "<p>{}</p><form><input name=q></form>",
            "word ".repeat(20_000)
        ),
    );
    (
        g,
        vec![healthy1, healthy2, ghost, empty, formless, soup, huge],
    )
}

#[test]
fn model_construction_never_panics_on_broken_pages() {
    let (g, targets) = pathological_graph();
    let corpus = FormPageCorpus::from_graph(&g, &targets, &ModelOptions::default());
    assert_eq!(corpus.len(), targets.len());
    // Broken pages produce empty or tiny vectors, not crashes.
    assert!(
        corpus.pc[2].is_empty(),
        "ghost page must have an empty PC vector"
    );
    assert!(
        corpus.pc[3].is_empty(),
        "empty page must have an empty PC vector"
    );
}

#[test]
fn clustering_handles_empty_vectors() {
    let (g, targets) = pathological_graph();
    let corpus = FormPageCorpus::from_graph(&g, &targets, &ModelOptions::default());
    let space = FormPageSpace::new(&corpus, FeatureConfig::combined());
    let mut rng = StdRng::seed_from_u64(1);
    let out = cafc_c(&space, 3, &KMeansOptions::default(), &mut rng);
    assert_eq!(out.partition.num_assigned(), targets.len());
}

#[test]
fn cafc_ch_without_any_backlinks_pads_seeds() {
    let (g, targets) = pathological_graph();
    let corpus = FormPageCorpus::from_graph(&g, &targets, &ModelOptions::default());
    let space = FormPageSpace::new(&corpus, FeatureConfig::combined());
    let config = CafcChConfig::paper_default(3).with_hub(HubClusterOptions {
        min_cardinality: 1,
        ..Default::default()
    });
    let mut rng = StdRng::seed_from_u64(2);
    let out = cafc_ch(&g, &targets, &space, &config, &mut rng);
    assert_eq!(out.hub_seeds, 0, "no hubs exist in this graph");
    assert_eq!(out.padded_seeds, 3);
    assert_eq!(out.outcome.partition.num_assigned(), targets.len());
}

#[test]
fn anchor_extension_tolerates_linkless_pages() {
    let (g, targets) = pathological_graph();
    let corpus = FormPageCorpus::from_graph_with_anchors(&g, &targets, &ModelOptions::default());
    assert!(corpus.anchor.iter().all(cafc_vsm::SparseVector::is_empty));
}

#[test]
fn single_page_corpus() {
    let mut g = WebGraph::new();
    let p = g.add_page(
        url("http://solo.com/f"),
        "<form>q <input name=q></form>".into(),
    );
    let corpus = FormPageCorpus::from_graph(&g, &[p], &ModelOptions::default());
    let space = FormPageSpace::new(&corpus, FeatureConfig::combined());
    let mut rng = StdRng::seed_from_u64(3);
    let out = cafc_c(&space, 1, &KMeansOptions::default(), &mut rng);
    assert_eq!(out.partition.clusters(), &[vec![0]]);
}

// ---- crawler failure injection -----------------------------------------

/// A fetcher with scripted per-host misbehavior: the first `fail_first`
/// attempts against a host time out, and bodies from `truncate_host` are
/// cut off mid-tag. Unlike `ChaosFetcher`'s seeded randomness, this gives
/// the tests exact control over the failure sequence.
struct ScriptedFetcher<'g> {
    graph: &'g WebGraph,
    inner: GraphFetcher<'g>,
    fail_first: HashMap<String, u32>,
    truncate_host: Option<(String, usize)>,
    attempts_by_host: HashMap<String, u32>,
}

impl<'g> ScriptedFetcher<'g> {
    fn new(graph: &'g WebGraph) -> Self {
        ScriptedFetcher {
            graph,
            inner: GraphFetcher::new(graph),
            fail_first: HashMap::new(),
            truncate_host: None,
            attempts_by_host: HashMap::new(),
        }
    }
}

impl Fetcher for ScriptedFetcher<'_> {
    fn fetch(&mut self, page: PageId) -> Result<FetchResponse, FetchError> {
        let host = self.graph.url(page).host().to_string();
        let n = self.attempts_by_host.entry(host.clone()).or_insert(0);
        *n += 1;
        if let Some(&budget) = self.fail_first.get(&host) {
            if *n <= budget {
                return Err(FetchError::TimedOut);
            }
        }
        let mut response = self.inner.fetch(page)?;
        if let Some((truncate_host, cut)) = &self.truncate_host {
            if &host == truncate_host && response.html.len() > *cut {
                response.html.truncate(*cut);
                response.truncated = true;
            }
        }
        Ok(response)
    }
}

const SEARCHABLE_FORM: &str =
    r#"<form action="/s"><input name=q><input type=submit value=Search></form>"#;

/// A portal linking to two single-page hosts plus a multi-page one, all
/// with searchable forms.
fn three_host_web() -> (WebGraph, PageId) {
    let mut g = WebGraph::new();
    let portal = g.add_page(
        url("http://hub.com/"),
        r#"<a href="http://ok.com/f">a</a><a href="http://doomed.com/f">b</a>
           <a href="http://flaky.com/f1">c</a><a href="http://flaky.com/f2">d</a>
           <a href="http://flaky.com/f3">e</a>"#
            .into(),
    );
    for page in [
        "http://ok.com/f",
        "http://doomed.com/f",
        "http://flaky.com/f1",
        "http://flaky.com/f2",
        "http://flaky.com/f3",
    ] {
        g.add_page(
            url(page),
            format!("<p>airfare flights travel</p>{SEARCHABLE_FORM}"),
        );
    }
    (g, portal)
}

#[test]
fn retry_exhaustion_dead_letters_the_host_but_clusters_survivors() {
    let (g, portal) = three_host_web();
    let mut fetcher = ScriptedFetcher::new(&g);
    // doomed.com never answers; everything else is healthy.
    fetcher.fail_first.insert("doomed.com".into(), u32::MAX);
    let config = ResilientConfig {
        retry: RetryPolicy {
            max_retries: 2,
            ..RetryPolicy::default()
        },
        ..ResilientConfig::default()
    };
    let outcome = crawl_resilient(&g, &mut fetcher, portal, &config);

    assert!(outcome.stats.is_accounted(), "{}", outcome.stats);
    assert_eq!(outcome.stats.dead_letter.len(), 1);
    let dead = &outcome.stats.dead_letter[0];
    assert_eq!(dead.reason, AbandonReason::RetriesExhausted);
    assert_eq!(dead.url.host(), "doomed.com");
    assert_eq!(dead.attempts, 3, "max_retries = 2 means 3 attempts");

    // The four surviving form pages still flow through the pipeline.
    let survivors = outcome.pages.searchable_form_pages;
    assert_eq!(survivors.len(), 4);
    let corpus = FormPageCorpus::from_graph(&g, &survivors, &ModelOptions::default());
    let space = FormPageSpace::new(&corpus, FeatureConfig::combined());
    let mut rng = StdRng::seed_from_u64(5);
    let out = cafc_c(&space, 2, &KMeansOptions::default(), &mut rng);
    assert_eq!(out.partition.num_assigned(), survivors.len());
}

#[test]
fn breaker_trips_then_recovers_through_half_open_probes() {
    let (g, portal) = three_host_web();
    let mut fetcher = ScriptedFetcher::new(&g);
    // flaky.com fails its first 6 fetches, then comes back for good. With a
    // threshold of 2 and only 1 retry, its breaker must trip; the crawl can
    // only recover the host's pages by waiting out the cooldown and probing
    // it half-open.
    fetcher.fail_first.insert("flaky.com".into(), 6);
    let config = ResilientConfig {
        retry: RetryPolicy {
            max_retries: 1,
            ..RetryPolicy::default()
        },
        breaker: BreakerConfig {
            failure_threshold: 2,
            ..BreakerConfig::default()
        },
        max_parks: 8,
        ..ResilientConfig::default()
    };
    let outcome = crawl_resilient(&g, &mut fetcher, portal, &config);

    assert!(outcome.stats.is_accounted(), "{}", outcome.stats);
    assert!(outcome.stats.breaker_trips >= 1, "{}", outcome.stats);
    assert!(
        outcome.stats.parked >= 1,
        "pages must wait out the open breaker"
    );
    // Once the host recovered, every page was eventually fetched.
    assert_eq!(outcome.pages.searchable_form_pages.len(), 5);
    assert!(
        outcome.stats.abandoned_hosts.is_empty(),
        "{}",
        outcome.stats
    );
}

#[test]
fn truncated_html_mid_tag_degrades_to_fewer_forms_not_a_crash() {
    let (g, portal) = three_host_web();
    let mut fetcher = ScriptedFetcher::new(&g);
    // Cut flaky.com's bodies off in the middle of the <form ...> open tag,
    // inside its attribute list.
    let cut = "<p>airfare flights travel</p><form acti".len();
    fetcher.truncate_host = Some(("flaky.com".into(), cut));
    let outcome = crawl_resilient(&g, &mut fetcher, portal, &ResilientConfig::default());

    assert!(outcome.stats.is_accounted(), "{}", outcome.stats);
    assert_eq!(outcome.stats.truncated_pages, 3);
    // Truncated pages are visited (the fetch succeeded) but their mangled
    // forms cannot be classified as searchable.
    assert_eq!(outcome.pages.visited.len(), 6);
    let survivors = outcome.pages.searchable_form_pages;
    assert_eq!(survivors.len(), 2, "only intact hosts keep their forms");

    // What survived still clusters.
    let corpus = FormPageCorpus::from_graph(&g, &survivors, &ModelOptions::default());
    let space = FormPageSpace::new(&corpus, FeatureConfig::combined());
    let mut rng = StdRng::seed_from_u64(6);
    let out = cafc_c(&space, 1, &KMeansOptions::default(), &mut rng);
    assert_eq!(out.partition.num_assigned(), survivors.len());
}

#[test]
fn identical_pages_cluster_together() {
    let mut g = WebGraph::new();
    let html = "<p>airfare flights travel</p><form>departure <input name=a></form>";
    let distinct = "<p>careers salary employment</p><form>keywords <input name=b></form>";
    let mut targets = Vec::new();
    for i in 0..4 {
        targets.push(g.add_page(url(&format!("http://dup{i}.com/f")), html.into()));
    }
    targets.push(g.add_page(url("http://other.com/f"), distinct.into()));
    let corpus = FormPageCorpus::from_graph(&g, &targets, &ModelOptions::default());
    let space = FormPageSpace::new(&corpus, FeatureConfig::combined());
    let mut rng = StdRng::seed_from_u64(4);
    let out = cafc_c(&space, 2, &KMeansOptions::default(), &mut rng);
    // The four duplicates must share a cluster.
    let assignments = out.partition.assignments();
    let first = assignments[0];
    assert!(
        assignments[..4].iter().all(|&a| a == first),
        "{assignments:?}"
    );
}
