//! The scale tier (ROADMAP item 3): seeded runs of the sharded batch
//! pipeline at 10^4 pages in CI, with the 10^5 leg behind `--ignored`
//! (run it with `cargo test --test scale -- --ignored`, or via
//! `CAFC_SCALE_FULL=1` on the smoke test).
//!
//! What every size asserts, end to end:
//! * the accounting identity — every generated page is ok, degraded or
//!   quarantined, and the report balances;
//! * partition validity — every kept page in exactly one cluster;
//! * sparse ≡ dense — the candidate-index k-means kernel is bit-identical
//!   to the dense reference on the real `FormPageSpace`;
//! * policy invariance — `ExecPolicy::Serial` and `Parallel` produce
//!   byte-identical corpora and partitions.

use cafc::{
    ExecPolicy, FeatureConfig, FormPageCorpus, FormPageSpace, IngestLimits, KMeansOptions,
    ModelOptions,
};
use cafc_cluster::{kmeans_exec, kmeans_sparse_exec, random_singleton_seeds, ClusterSpace};
use cafc_corpus::{generate_sharded, ShardedCorpusConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

const K: usize = 8;
const SEED: u64 = 10;

fn corpus_cfg(pages: usize) -> ShardedCorpusConfig {
    ShardedCorpusConfig::new()
        .with_total_form_pages(pages)
        .with_shard_pages(512)
        .with_seed(SEED)
}

/// Build from shards under `policy`, returning the corpus and report.
fn build(pages: usize, policy: ExecPolicy) -> (FormPageCorpus, cafc::IngestReport) {
    let shards = generate_sharded(&corpus_cfg(pages));
    FormPageCorpus::from_shards_exec(
        shards,
        &ModelOptions::default(),
        &IngestLimits::new(),
        policy,
    )
}

/// The full battery at one corpus size.
fn run_at(pages: usize) {
    // ---- sharded build, serial vs parallel --------------------------
    let (corpus, report) = build(pages, ExecPolicy::Serial);
    let (par_corpus, par_report) = build(pages, ExecPolicy::Parallel { threads: 4 });

    // Accounting identity: every page accounted, reports identical.
    assert!(report.is_accounted(), "unbalanced ingest report");
    assert_eq!(report.total(), pages);
    assert_eq!(
        report.ok() + report.degraded() + report.quarantined(),
        pages
    );
    assert_eq!(
        report.outcomes, par_report.outcomes,
        "policy changed outcomes"
    );

    // Corpus bit-equality across policies: dictionary and vectors.
    assert_eq!(corpus.dict.len(), par_corpus.dict.len());
    assert_eq!(corpus.len(), par_corpus.len());
    for i in 0..corpus.len() {
        assert_eq!(
            corpus.pc[i].entries(),
            par_corpus.pc[i].entries(),
            "pc[{i}]"
        );
        assert_eq!(
            corpus.fc[i].entries(),
            par_corpus.fc[i].entries(),
            "fc[{i}]"
        );
    }

    // ---- clustering: sparse ≡ dense ≡ every policy ------------------
    let space = FormPageSpace::new(&corpus, FeatureConfig::combined());
    let n = space.len();
    assert_eq!(n, report.kept.len());
    let seeds = random_singleton_seeds(&space, K, &mut StdRng::seed_from_u64(SEED));
    let opts = KMeansOptions::default();
    let dense = kmeans_exec(&space, &seeds, &opts, ExecPolicy::Serial);
    let sparse = kmeans_sparse_exec(&space, &seeds, &opts, ExecPolicy::Serial);
    let sparse_par = kmeans_sparse_exec(&space, &seeds, &opts, ExecPolicy::Parallel { threads: 4 });

    assert_eq!(
        dense.partition.clusters(),
        sparse.partition.clusters(),
        "sparse kernel diverged from the dense reference"
    );
    assert_eq!(dense.iterations, sparse.iterations);
    assert_eq!(
        sparse.partition.clusters(),
        sparse_par.partition.clusters(),
        "sparse kernel diverged across policies"
    );

    // Partition validity: every kept page in exactly one cluster.
    let mut assigned: Vec<usize> = sparse
        .partition
        .clusters()
        .iter()
        .flatten()
        .copied()
        .collect();
    assigned.sort_unstable();
    assert_eq!(assigned, (0..n).collect::<Vec<_>>());
    assert!(sparse.partition.num_clusters() <= K);
}

/// The CI smoke leg: 10^4 seeded pages through the whole battery. Set
/// `CAFC_SCALE_FULL=1` to extend this run to 10^5 pages in-process.
#[test]
fn scale_smoke_1e4() {
    run_at(10_000);
    if std::env::var("CAFC_SCALE_FULL").as_deref() == Ok("1") {
        run_at(100_000);
    }
}

/// The 10^5 leg, too slow for every CI run:
/// `cargo test --test scale -- --ignored`.
#[test]
#[ignore = "10^5 pages: minutes in debug builds; run explicitly"]
fn scale_full_1e5() {
    run_at(100_000);
}

/// Empty and singleton shards are legal inputs to the sharded build and
/// change nothing: the merge is invariant to the partition of pages into
/// shards, including degenerate ones.
#[test]
fn empty_and_singleton_shards_are_no_ops() {
    let cfg = corpus_cfg(60);
    let pages: Vec<String> = generate_sharded(&cfg).into_iter().flatten().collect();
    let opts = ModelOptions::default();
    let limits = IngestLimits::new();
    let (base, base_report) =
        FormPageCorpus::from_html_ingest(pages.iter().map(String::as_str), &opts, &limits);

    // Interleave empty shards with singletons and one big tail shard.
    let mut shards: Vec<Vec<String>> = vec![Vec::new()];
    for p in &pages[..10] {
        shards.push(vec![p.clone()]);
        shards.push(Vec::new());
    }
    shards.push(pages[10..].to_vec());
    shards.push(Vec::new());
    let (sharded, report) = FormPageCorpus::from_shards(shards, &opts, &limits);

    assert_eq!(base_report.outcomes, report.outcomes);
    assert_eq!(base.dict.len(), sharded.dict.len());
    for i in 0..base.len() {
        assert_eq!(base.pc[i].entries(), sharded.pc[i].entries());
        assert_eq!(base.fc[i].entries(), sharded.fc[i].entries());
    }
}

/// The memory budget degrades a build predictably: over-budget pages are
/// quarantined (never a panic, never an OOM-style unbounded keep), the
/// kept bytes stay under the budget, and the decision sequence is
/// identical across policies and shard sizes.
#[test]
fn budget_degrades_predictably_at_scale() {
    let cfg = corpus_cfg(200);
    let shards = generate_sharded(&cfg);
    let opts = ModelOptions::default();
    // Probe the unbudgeted cost, then halve it.
    let (_, free_report) = FormPageCorpus::from_shards(shards.clone(), &opts, &IngestLimits::new());
    assert_eq!(free_report.quarantined(), 0, "unbudgeted run must keep all");
    let budget = {
        // Cost of the kept corpus: recompute from a zero-budget probe.
        let probe_limits = IngestLimits::new().with_max_corpus_bytes(0);
        let (_, probe) = FormPageCorpus::from_shards(shards.clone(), &opts, &probe_limits);
        let total: usize = probe
            .outcomes
            .iter()
            .filter_map(|o| match o {
                cafc::PageOutcome::Quarantined {
                    error: cafc::IngestError::BudgetExhausted { needed, .. },
                    ..
                } => Some(*needed),
                _ => None,
            })
            .sum();
        assert!(total > 0);
        total / 2
    };
    let limits = IngestLimits::new().with_max_corpus_bytes(budget);
    let (squeezed, squeezed_report) = FormPageCorpus::from_shards(shards.clone(), &opts, &limits);
    assert!(
        squeezed_report.quarantined() > 0,
        "half the byte budget must quarantine pages"
    );
    assert!(squeezed.len() < free_report.kept.len());
    let kept_bytes: usize = squeezed
        .pc
        .iter()
        .zip(&squeezed.fc)
        .map(|(p, f)| p.heap_bytes() + f.heap_bytes())
        .sum();
    assert!(
        kept_bytes <= budget,
        "kept {kept_bytes} bytes against budget {budget}"
    );
    // Same decisions under a parallel policy and a different shard size.
    let (_, par_report) = FormPageCorpus::from_shards_exec(
        shards,
        &opts,
        &limits.with_shard_pages(7),
        ExecPolicy::Parallel { threads: 3 },
    );
    assert_eq!(squeezed_report.outcomes, par_report.outcomes);
}
