//! Property-based tests over the core form-page model: invariants that
//! must hold for *any* generated page set.
//!
//! Two halves. The always-on half runs on `cafc-check`, the workspace's
//! offline property engine, so these invariants are exercised on every
//! commit (including under `tools/offline-check.sh test`, where the real
//! `proptest` crate is unavailable). The original `proptest` suite is
//! preserved verbatim behind the `networked` feature for environments
//! with a populated cargo registry:
//! `cargo test --features networked --test model_props`.

use cafc::{FeatureConfig, FormPageCorpus, FormPageSpace, LocationWeights, ModelOptions};
use cafc_check::corpus::clean_html_corpus;
use cafc_check::gen::{f64s, pairs, Gen};
use cafc_check::{check, require, require_close, require_eq, CheckConfig};
use cafc_cluster::ClusterSpace;

fn corpus_gen() -> Gen<Vec<String>> {
    clean_html_corpus(2, 7)
}

fn build(pages: &[String]) -> FormPageCorpus {
    FormPageCorpus::from_html(pages.iter().map(String::as_str), &ModelOptions::default())
}

/// Model construction is deterministic.
#[test]
fn model_deterministic() {
    check!(CheckConfig::new(), corpus_gen(), |pages| {
        let a = build(pages);
        let b = build(pages);
        require_eq!(a.len(), b.len());
        for i in 0..a.len() {
            require_eq!(a.pc[i].entries(), b.pc[i].entries());
            require_eq!(a.fc[i].entries(), b.fc[i].entries());
        }
        Ok(())
    });
}

/// All TF-IDF weights are non-negative and finite.
#[test]
fn weights_nonnegative() {
    check!(CheckConfig::new(), corpus_gen(), |pages| {
        let corpus = build(pages);
        for v in corpus.pc.iter().chain(&corpus.fc) {
            for &(t, w) in v.entries() {
                require!(w >= 0.0 && w.is_finite(), "weight({t:?}) = {w}");
            }
        }
        Ok(())
    });
}

/// Similarity is symmetric and in [0, 1] under every feature config.
#[test]
fn similarity_symmetric_bounded() {
    check!(CheckConfig::new(), corpus_gen(), |pages| {
        let corpus = build(pages);
        for config in [
            FeatureConfig::FcOnly,
            FeatureConfig::PcOnly,
            FeatureConfig::combined(),
        ] {
            let space = FormPageSpace::new(&corpus, config);
            for a in 0..corpus.len() {
                for b in 0..corpus.len() {
                    let s = space.item_similarity(a, b);
                    require!((0.0..=1.0).contains(&s), "{config:?}: sim({a},{b}) = {s}");
                    require_close!(s, space.item_similarity(b, a), 1e-12);
                }
            }
        }
        Ok(())
    });
}

/// A page is always at least as similar to itself as to any other page
/// (under combined features).
#[test]
fn self_similarity_maximal() {
    check!(CheckConfig::new(), corpus_gen(), |pages| {
        let corpus = build(pages);
        let space = FormPageSpace::new(&corpus, FeatureConfig::combined());
        for a in 0..corpus.len() {
            let self_sim = space.item_similarity(a, a);
            for b in 0..corpus.len() {
                require!(
                    space.item_similarity(a, b) <= self_sim + 1e-12,
                    "sim({a},{b}) exceeds self-similarity {self_sim}"
                );
            }
        }
        Ok(())
    });
}

/// Raising a location weight never decreases that location's terms'
/// weights (monotonicity of Equation 1 in LOC).
#[test]
fn loc_weight_monotone() {
    let cases = pairs(&corpus_gen(), &f64s(1.0, 4.0));
    check!(CheckConfig::new(), cases, |(pages, boost)| {
        let base = ModelOptions::default();
        let boosted = ModelOptions::new().with_weights(LocationWeights {
            title: base.weights.title * boost,
            ..base.weights
        });
        let a = FormPageCorpus::from_html(pages.iter().map(String::as_str), &base);
        let b = FormPageCorpus::from_html(pages.iter().map(String::as_str), &boosted);
        // Same dictionaries (same interning order), so ids are comparable.
        for i in 0..a.len() {
            for &(t, w) in a.pc[i].entries() {
                require!(
                    b.pc[i].get(t) >= w - 1e-12,
                    "weight({t:?}) shrank under boost {boost}"
                );
            }
        }
        Ok(())
    });
}

/// Centroid similarity of a singleton equals item similarity.
#[test]
fn singleton_centroid_consistency() {
    check!(CheckConfig::new(), corpus_gen(), |pages| {
        let corpus = build(pages);
        let space = FormPageSpace::new(&corpus, FeatureConfig::combined());
        let ca = space.centroid(&[0]);
        for b in 0..corpus.len() {
            require_close!(space.similarity(&ca, b), space.item_similarity(0, b), 1e-12);
        }
        Ok(())
    });
}

/// On an anchor-less corpus, `WithAnchors` carries no anchor signal and
/// must degrade to exactly the `Combined` weighting — bit-identically,
/// since `combine` drops the missing anchor term from both numerator and
/// denominator (the §6 extension never dilutes when unavailable).
#[test]
fn anchorless_with_anchors_matches_combined() {
    check!(CheckConfig::new(), corpus_gen(), |pages| {
        let corpus = build(pages);
        let with = FormPageSpace::new(
            &corpus,
            FeatureConfig::WithAnchors {
                c1: 1.0,
                c2: 1.0,
                c3: 1.0,
            },
        );
        let without = FormPageSpace::new(&corpus, FeatureConfig::Combined { c1: 1.0, c2: 1.0 });
        for a in 0..corpus.len() {
            for b in 0..corpus.len() {
                let l = with.item_similarity(a, b);
                let r = without.item_similarity(a, b);
                require!(
                    l == r,
                    "WithAnchors diverges from Combined on anchor-less corpus: \
                     sim({a},{b}) {l} != {r}"
                );
            }
        }
        Ok(())
    });
}

/// The original proptest suite, unchanged — needs the real `proptest`
/// crate, so it only compiles with `--features networked`.
#[cfg(feature = "networked")]
mod networked {
    use cafc::{FeatureConfig, FormPageCorpus, FormPageSpace, LocationWeights, ModelOptions};
    use cafc_cluster::ClusterSpace;
    use proptest::prelude::*;

    /// A tiny random "form page" built from word pools.
    fn arb_page() -> impl Strategy<Value = String> {
        let word = "[a-z]{3,9}";
        (
            proptest::collection::vec(word, 0..12), // body words
            proptest::collection::vec(word, 0..6),  // form words
            proptest::collection::vec(word, 0..5),  // option words
            proptest::option::of(word),             // title
        )
            .prop_map(|(body, form, options, title)| {
                let title = title
                    .map(|t| format!("<title>{t}</title>"))
                    .unwrap_or_default();
                let opts: String = options
                    .iter()
                    .map(|o| format!("<option>{o}</option>"))
                    .collect();
                format!(
                    "{title}<p>{}</p><form>{} <select name=s>{opts}</select><input name=q></form>",
                    body.join(" "),
                    form.join(" ")
                )
            })
    }

    fn arb_corpus() -> impl Strategy<Value = Vec<String>> {
        proptest::collection::vec(arb_page(), 2..8)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Model construction is deterministic.
        #[test]
        fn model_deterministic(pages in arb_corpus()) {
            let opts = ModelOptions::default();
            let a = FormPageCorpus::from_html(pages.iter().map(String::as_str), &opts);
            let b = FormPageCorpus::from_html(pages.iter().map(String::as_str), &opts);
            prop_assert_eq!(a.len(), b.len());
            for i in 0..a.len() {
                prop_assert_eq!(a.pc[i].entries(), b.pc[i].entries());
                prop_assert_eq!(a.fc[i].entries(), b.fc[i].entries());
            }
        }

        /// All TF-IDF weights are non-negative and finite.
        #[test]
        fn weights_nonnegative(pages in arb_corpus()) {
            let corpus =
                FormPageCorpus::from_html(pages.iter().map(String::as_str), &ModelOptions::default());
            for v in corpus.pc.iter().chain(&corpus.fc) {
                for &(_, w) in v.entries() {
                    prop_assert!(w >= 0.0 && w.is_finite());
                }
            }
        }

        /// Similarity is symmetric and in [0, 1] under every feature config.
        #[test]
        fn similarity_symmetric_bounded(pages in arb_corpus()) {
            let corpus =
                FormPageCorpus::from_html(pages.iter().map(String::as_str), &ModelOptions::default());
            for config in [FeatureConfig::FcOnly, FeatureConfig::PcOnly, FeatureConfig::combined()] {
                let space = FormPageSpace::new(&corpus, config);
                for a in 0..corpus.len() {
                    for b in 0..corpus.len() {
                        let s = space.item_similarity(a, b);
                        prop_assert!((0.0..=1.0).contains(&s), "{config:?}: sim({a},{b})={s}");
                        prop_assert!((s - space.item_similarity(b, a)).abs() < 1e-12);
                    }
                }
            }
        }

        /// A page is always at least as similar to itself as to any other page
        /// (under combined features).
        #[test]
        fn self_similarity_maximal(pages in arb_corpus()) {
            let corpus =
                FormPageCorpus::from_html(pages.iter().map(String::as_str), &ModelOptions::default());
            let space = FormPageSpace::new(&corpus, FeatureConfig::combined());
            for a in 0..corpus.len() {
                let self_sim = space.item_similarity(a, a);
                for b in 0..corpus.len() {
                    prop_assert!(space.item_similarity(a, b) <= self_sim + 1e-12);
                }
            }
        }

        /// Raising a location weight never decreases that location's terms'
        /// weights (monotonicity of Equation 1 in LOC).
        #[test]
        fn loc_weight_monotone(pages in arb_corpus(), boost in 1.0f64..4.0) {
            let base = ModelOptions::default();
            let boosted = ModelOptions::new()
                .with_weights(LocationWeights { title: base.weights.title * boost, ..base.weights });
            let a = FormPageCorpus::from_html(pages.iter().map(String::as_str), &base);
            let b = FormPageCorpus::from_html(pages.iter().map(String::as_str), &boosted);
            // Same dictionaries (same interning order), so ids are comparable.
            for i in 0..a.len() {
                for &(t, w) in a.pc[i].entries() {
                    prop_assert!(b.pc[i].get(t) >= w - 1e-12, "weight shrank under boost");
                }
            }
        }

        /// Centroid similarity of a singleton equals item similarity.
        #[test]
        fn singleton_centroid_consistency(pages in arb_corpus()) {
            let corpus =
                FormPageCorpus::from_html(pages.iter().map(String::as_str), &ModelOptions::default());
            let space = FormPageSpace::new(&corpus, FeatureConfig::combined());
            let n = corpus.len();
            let ca = space.centroid(&[0]);
            for b in 0..n {
                let via_centroid = space.similarity(&ca, b);
                let direct = space.item_similarity(0, b);
                prop_assert!((via_centroid - direct).abs() < 1e-12);
            }
        }
    }
}

/// Shard-merge term-id order invariance: building from pre-cut shards —
/// any chunking of the page list, any `shard_pages` work-unit size —
/// reproduces the single-batch dictionary (same term-id ↔ term mapping in
/// first-occurrence order) and bit-identical vectors and report.
#[test]
fn shard_merge_term_order_invariant() {
    use cafc::IngestLimits;
    use cafc_check::gen::usizes;
    let problem = pairs(&corpus_gen(), &pairs(&usizes(1, 4), &usizes(1, 3)));
    check!(CheckConfig::new(), problem, |(pages, (cut, unit))| {
        let opts = ModelOptions::default();
        let limits = IngestLimits::new().with_shard_pages(*unit);
        let (base, base_report) =
            FormPageCorpus::from_html_ingest(pages.iter().map(String::as_str), &opts, &limits);
        let shards: Vec<Vec<String>> = pages.chunks(*cut).map(<[String]>::to_vec).collect();
        let (sharded, report) = FormPageCorpus::from_shards(shards, &opts, &limits);
        require_eq!(base.dict.len(), sharded.dict.len());
        for ((ta, sa), (tb, sb)) in base.dict.iter().zip(sharded.dict.iter()) {
            require_eq!(ta, tb);
            require_eq!(sa, sb);
        }
        require_eq!(base.len(), sharded.len());
        for i in 0..base.len() {
            require_eq!(base.pc[i].entries(), sharded.pc[i].entries());
            require_eq!(base.fc[i].entries(), sharded.fc[i].entries());
        }
        require_eq!(base_report.outcomes, report.outcomes);
        require_eq!(base_report.kept, report.kept);
        Ok(())
    });
}
