//! End-to-end integration: synthetic web → form-page model → CAFC-C /
//! CAFC-CH → evaluation. Crosses every crate in the workspace.

use cafc::{
    cafc_c, cafc_ch, CafcChConfig, FeatureConfig, FormPageCorpus, FormPageSpace, HubClusterOptions,
    KMeansOptions, ModelOptions,
};
use cafc_corpus::{generate, CorpusConfig};
use cafc_eval::{entropy, f_measure, EntropyBase};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_config(seed: u64) -> CafcChConfig {
    let _ = seed;
    CafcChConfig::paper_default(8).with_hub(HubClusterOptions {
        min_cardinality: 4,
        ..Default::default()
    })
}

#[test]
fn end_to_end_cafc_ch_beats_random_chance() {
    let web = generate(&CorpusConfig::small(1));
    let targets = web.form_page_ids();
    let labels = web.labels();
    let corpus = FormPageCorpus::from_graph(&web.graph, &targets, &ModelOptions::default());
    let space = FormPageSpace::new(&corpus, FeatureConfig::combined());
    let mut rng = StdRng::seed_from_u64(2);
    let result = cafc_ch(&web.graph, &targets, &space, &small_config(2), &mut rng);
    let clusters = result.outcome.partition.clusters();

    let e = entropy(clusters, &labels, EntropyBase::Two);
    let f = f_measure(clusters, &labels);
    // Random assignment over 8 domains would give entropy near 3 bits and
    // F near 1/8; CAFC-CH must be far better.
    assert!(e < 1.2, "entropy {e} too high");
    assert!(f > 0.6, "F-measure {f} too low");
    assert_eq!(result.outcome.partition.num_assigned(), targets.len());
}

#[test]
fn cafc_ch_beats_cafc_c_on_average() {
    let web = generate(&CorpusConfig::small(5));
    let targets = web.form_page_ids();
    let labels = web.labels();
    let corpus = FormPageCorpus::from_graph(&web.graph, &targets, &ModelOptions::default());
    let space = FormPageSpace::new(&corpus, FeatureConfig::combined());

    let mut c_entropy = 0.0;
    for run in 0..5u64 {
        let mut rng = StdRng::seed_from_u64(run);
        let out = cafc_c(&space, 8, &KMeansOptions::default(), &mut rng);
        c_entropy += entropy(out.partition.clusters(), &labels, EntropyBase::Two);
    }
    c_entropy /= 5.0;

    let mut rng = StdRng::seed_from_u64(9);
    let ch = cafc_ch(&web.graph, &targets, &space, &small_config(9), &mut rng);
    let ch_entropy = entropy(ch.outcome.partition.clusters(), &labels, EntropyBase::Two);
    assert!(
        ch_entropy < c_entropy,
        "hub seeding must improve entropy: CAFC-CH {ch_entropy} vs CAFC-C {c_entropy}"
    );
}

#[test]
fn combined_features_beat_fc_only() {
    let web = generate(&CorpusConfig::small(8));
    let targets = web.form_page_ids();
    let labels = web.labels();
    let corpus = FormPageCorpus::from_graph(&web.graph, &targets, &ModelOptions::default());

    let mut entropies = Vec::new();
    for config in [FeatureConfig::FcOnly, FeatureConfig::combined()] {
        let space = FormPageSpace::new(&corpus, config);
        let mut acc = 0.0;
        for run in 0..5u64 {
            let mut rng = StdRng::seed_from_u64(run);
            let out = cafc_c(&space, 8, &KMeansOptions::default(), &mut rng);
            acc += entropy(out.partition.clusters(), &labels, EntropyBase::Two);
        }
        entropies.push(acc / 5.0);
    }
    assert!(
        entropies[1] < entropies[0],
        "FC+PC ({}) must beat FC-only ({})",
        entropies[1],
        entropies[0]
    );
}

#[test]
fn deterministic_given_seeds() {
    let web = generate(&CorpusConfig::small(3));
    let targets = web.form_page_ids();
    let corpus = FormPageCorpus::from_graph(&web.graph, &targets, &ModelOptions::default());
    let space = FormPageSpace::new(&corpus, FeatureConfig::combined());
    let run = |seed: u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        cafc_ch(&web.graph, &targets, &space, &small_config(seed), &mut rng)
            .outcome
            .partition
    };
    assert_eq!(run(4), run(4));
}

#[test]
fn every_page_lands_in_exactly_one_cluster() {
    let web = generate(&CorpusConfig::small(6));
    let targets = web.form_page_ids();
    let corpus = FormPageCorpus::from_graph(&web.graph, &targets, &ModelOptions::default());
    let space = FormPageSpace::new(&corpus, FeatureConfig::combined());
    let mut rng = StdRng::seed_from_u64(6);
    let result = cafc_ch(&web.graph, &targets, &space, &small_config(6), &mut rng);
    let mut seen: Vec<usize> = result
        .outcome
        .partition
        .clusters()
        .iter()
        .flatten()
        .copied()
        .collect();
    seen.sort_unstable();
    let expect: Vec<usize> = (0..targets.len()).collect();
    assert_eq!(seen, expect);
}

#[test]
fn anchor_extension_produces_valid_space() {
    let web = generate(&CorpusConfig::small(7));
    let targets = web.form_page_ids();
    let corpus =
        FormPageCorpus::from_graph_with_anchors(&web.graph, &targets, &ModelOptions::default());
    // Most pages receive in-link anchor text from hubs.
    let with_anchor_text = corpus.anchor.iter().filter(|v| !v.is_empty()).count();
    assert!(
        with_anchor_text * 2 > targets.len(),
        "only {with_anchor_text} of {} pages got anchor vectors",
        targets.len()
    );
    let space = FormPageSpace::new(
        &corpus,
        FeatureConfig::WithAnchors {
            c1: 1.0,
            c2: 1.0,
            c3: 1.0,
        },
    );
    let mut rng = StdRng::seed_from_u64(7);
    let result = cafc_ch(&web.graph, &targets, &space, &small_config(7), &mut rng);
    assert_eq!(result.outcome.partition.num_assigned(), targets.len());
}
