//! The crash-recovery matrix: every resumable pipeline stage (crawl,
//! ingest, k-means, HAC) × every injected I/O fault kind.
//!
//! The contract under test, for each cell of the matrix: a run whose
//! checkpoint store faults at *any* mutating operation either completes
//! with the uninterrupted result (silent faults) or fails with a typed
//! [`StoreError`] — it never panics — and a subsequent `--resume` on the
//! real filesystem always succeeds and reproduces the uninterrupted run
//! **bit-identically** (digests below are `Debug` renderings of every
//! output field).
//!
//! Fixed injection points cover the early store operations where the
//! journal fingerprint and first snapshots live; the `cafc-check`
//! property sweeps randomized seeded fault schedules (replayable via the
//! printed `CAFC_CHECK_SEED`).

use std::path::PathBuf;

use cafc::ExecPolicy;
use cafc::{FeatureConfig, FormPageCorpus, FormPageSpace, IngestLimits, ModelOptions, Obs};
use cafc_check::gen::{f64s, pairs, usizes};
use cafc_check::{check, require, require_eq, CheckConfig};
use cafc_cluster::{
    hac_resumable, kmeans_resumable, random_singleton_seeds, HacOptions, KMeansOptions, Linkage,
};
use cafc_corpus::{generate, CorpusConfig, SyntheticWeb};
use cafc_crawler::{crawl_resumable, ChaosFetcher, FaultConfig, ResilientConfig};
use cafc_store::{ChaosFs, FaultKind, FaultPlan, StdFs, Store, StoreConfig, StoreError};
use rand::rngs::StdRng;
use rand::SeedableRng;

const STAGES: [&str; 4] = ["crawl", "ingest", "kmeans", "hac"];

fn tmpdir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("cafc-crash-recovery-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Deterministic inputs shared by every stage.
struct Fixture {
    web: SyntheticWeb,
    htmls: Vec<String>,
    corpus: FormPageCorpus,
}

impl Fixture {
    fn new(seed: u64) -> Fixture {
        let web = generate(&CorpusConfig::small(seed));
        let targets = web.form_page_ids();
        let htmls: Vec<String> = targets
            .iter()
            .map(|p| web.graph.html(*p).unwrap_or("").to_owned())
            .collect();
        let corpus = FormPageCorpus::from_graph_obs(
            &web.graph,
            &targets,
            &ModelOptions::default(),
            ExecPolicy::Auto,
            &Obs::disabled(),
        );
        Fixture { web, htmls, corpus }
    }
}

/// Fetch faults for the crawl stage — transient, permanent, truncation
/// and redirect chaos all active, so dead-letters and retries exercise
/// the journal.
fn fetch_faults() -> FaultConfig {
    FaultConfig {
        transient_rate: 0.25,
        permanent_rate: 0.05,
        truncate_rate: 0.1,
        redirect_rate: 0.05,
        seed: 1234,
        ..FaultConfig::default()
    }
}

/// Digest an ingest outcome field by field. The corpus's `Debug` cannot
/// be used directly: `TermDict` renders its term→id hash map in map
/// iteration order, which varies run to run. Its id-order iterator is
/// deterministic, and every vector stores entries in term-id order.
fn ingest_digest(corpus: &FormPageCorpus, report: &cafc::IngestReport) -> String {
    let dict: Vec<(u32, &str)> = corpus.dict.iter().map(|(id, term)| (id.0, term)).collect();
    format!(
        "{dict:?} {:?} {:?} {:?} {report:?}",
        corpus.pc, corpus.fc, corpus.anchor
    )
}

/// Run one full stage against `store`, digesting its complete outcome.
fn digest_stage(
    stage: &str,
    fx: &Fixture,
    store: &mut Store,
    resume: bool,
) -> Result<String, StoreError> {
    let policy = ExecPolicy::Auto;
    match stage {
        "crawl" => {
            let mut fetcher = ChaosFetcher::over_graph(&fx.web.graph, fetch_faults());
            crawl_resumable(
                &fx.web.graph,
                &mut fetcher,
                fx.web.portal,
                &ResilientConfig::default(),
                &Obs::disabled(),
                store,
                resume,
            )
            .map(|o| format!("{o:?}"))
        }
        "ingest" => FormPageCorpus::from_html_ingest_resumable(
            fx.htmls.iter().map(String::as_str),
            &ModelOptions::default(),
            &IngestLimits::default(),
            policy,
            &Obs::disabled(),
            store,
            resume,
        )
        .map(|(corpus, report)| ingest_digest(&corpus, &report)),
        "kmeans" => {
            let space = FormPageSpace::new(&fx.corpus, FeatureConfig::combined());
            let seeds = random_singleton_seeds(&space, 5, &mut StdRng::seed_from_u64(11));
            kmeans_resumable(
                &space,
                &seeds,
                &KMeansOptions::default(),
                policy,
                &Obs::disabled(),
                store,
                resume,
            )
            .map(|o| format!("{:?} {} {}", o.partition, o.iterations, o.converged))
        }
        "hac" => {
            let space = FormPageSpace::new(&fx.corpus, FeatureConfig::combined());
            hac_resumable(
                &space,
                &[],
                &HacOptions {
                    target_clusters: 5,
                    linkage: Linkage::Average,
                },
                policy,
                &Obs::disabled(),
                store,
                resume,
            )
            .map(|p| format!("{p:?}"))
        }
        other => unreachable!("unknown stage {other}"),
    }
}

/// Uninterrupted baseline digest for a stage, from a clean store.
fn baseline(stage: &str, fx: &Fixture, cfg: StoreConfig) -> String {
    let dir = tmpdir(&format!("{stage}-baseline"));
    let mut store = Store::open(&dir, cfg, Obs::disabled()).expect("open baseline store");
    let digest = digest_stage(stage, fx, &mut store, false).expect("uninterrupted run");
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
    digest
}

/// The fixed-point matrix: every stage × every fault kind × each of the
/// first store operations. Crash (or corrupt), resume, compare.
#[test]
fn every_stage_recovers_from_every_fault_kind() {
    let fx = Fixture::new(41);
    let cfg = StoreConfig::new().with_checkpoint_every(3);
    for stage in STAGES {
        let expected = baseline(stage, &fx, cfg);
        for kind in FaultKind::ALL {
            for op in 0..5u64 {
                let label = format!("{stage}/{}/op{op}", kind.label());
                let dir = tmpdir(&label.replace('/', "-"));
                let chaos = ChaosFs::new(StdFs, FaultPlan::AtOp { op, kind });
                let first = match Store::open_with_vfs(Box::new(chaos), &dir, cfg, Obs::disabled())
                {
                    Ok(mut store) => digest_stage(stage, &fx, &mut store, false),
                    Err(e) => Err(e),
                };
                // Reaching this line means the faulted run did not panic:
                // it either completed — in which case its in-memory result
                // must already match the baseline — or it returned a typed
                // StoreError (the "crash").
                if let Ok(digest) = &first {
                    assert_eq!(digest, &expected, "{label}: completed faulted run diverged");
                }
                let mut store = Store::open(&dir, cfg, Obs::disabled()).expect("reopen");
                let resumed = digest_stage(stage, &fx, &mut store, true)
                    .unwrap_or_else(|e| panic!("{label}: resume failed: {e}"));
                assert_eq!(resumed, expected, "{label}: resume diverged from baseline");
                drop(store);
                let _ = std::fs::remove_dir_all(&dir);
            }
        }
    }
}

/// Randomized seeded fault schedules: whatever the schedule breaks, a
/// resume on the real filesystem reproduces the uninterrupted result.
#[test]
fn randomized_fault_schedules_always_recover() {
    let fx = Fixture::new(17);
    let cfg = StoreConfig::new().with_checkpoint_every(2);
    let baselines: Vec<String> = STAGES.iter().map(|s| baseline(s, &fx, cfg)).collect();

    let cases = pairs(
        &usizes(0, STAGES.len() - 1),
        &pairs(&usizes(0, 1 << 20), &f64s(0.02, 0.5)),
    );
    check!(CheckConfig::new().with_cases(12), cases, |case| {
        let (stage_i, (fault_seed, rate)) = *case;
        let stage = STAGES[stage_i];
        let dir = tmpdir(&format!("seeded-{stage}-{fault_seed}"));
        let chaos = ChaosFs::new(
            StdFs,
            FaultPlan::Seeded {
                seed: fault_seed as u64,
                rate,
            },
        );
        // The faulted leg is allowed to crash anywhere (or nowhere).
        if let Ok(mut store) = Store::open_with_vfs(Box::new(chaos), &dir, cfg, Obs::disabled()) {
            let _ = digest_stage(stage, &fx, &mut store, false);
        }
        let resumed = Store::open(&dir, cfg, Obs::disabled())
            .and_then(|mut store| digest_stage(stage, &fx, &mut store, true));
        let _ = std::fs::remove_dir_all(&dir);
        match resumed {
            Err(e) => require!(false, "{stage} seed {fault_seed}: resume failed: {e}"),
            Ok(digest) => require_eq!(digest, baselines[stage_i].clone()),
        }
        Ok(())
    });
}

/// The store's observability counters tell the recovery story: snapshots
/// and journal appends during the run, recoveries on resume, corrupt
/// discards when silent bit flips are found and thrown away.
#[test]
fn store_counters_cover_snapshots_journal_recovery_and_corruption() {
    let fx = Fixture::new(23);
    let cfg = StoreConfig::new().with_checkpoint_every(2);
    let expected = baseline("ingest", &fx, cfg);
    let obs = Obs::enabled();

    // Sweep bit flips over the early store ops: every run completes (the
    // fault is silent), at least one flip lands in a journal or snapshot
    // payload, and every resume must detect it, discard, and still match.
    for op in 0..6u64 {
        let dir = tmpdir(&format!("counters-{op}"));
        let chaos = ChaosFs::new(
            StdFs,
            FaultPlan::AtOp {
                op,
                kind: FaultKind::BitFlip,
            },
        );
        let mut store =
            Store::open_with_vfs(Box::new(chaos), &dir, cfg, obs.clone()).expect("open chaos");
        digest_stage("ingest", &fx, &mut store, false).expect("silent fault run completes");
        drop(store);
        let mut store = Store::open(&dir, cfg, obs.clone()).expect("reopen");
        let resumed = digest_stage("ingest", &fx, &mut store, true).expect("resume");
        assert_eq!(resumed, expected, "bit flip at op {op} changed the result");
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }

    let snap = obs.snapshot();
    let counter = |name: &str| {
        snap.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    };
    assert!(counter("store.snapshots") > 0, "no snapshots recorded");
    assert!(
        counter("store.journal_appends") > 0,
        "no journal appends recorded"
    );
    assert!(counter("store.recoveries") > 0, "no recoveries recorded");
    assert!(
        counter("store.corrupt_discards") > 0,
        "no bit flip was ever detected and discarded:\n{:?}",
        snap.counters
    );
}

/// Resuming against different inputs is refused with a typed error, not
/// silently blended into the wrong run.
#[test]
fn resume_with_different_inputs_is_a_typed_refusal() {
    let fx = Fixture::new(29);
    let cfg = StoreConfig::new();
    let dir = tmpdir("refusal");
    let mut store = Store::open(&dir, cfg, Obs::disabled()).expect("open");
    digest_stage("ingest", &fx, &mut store, false).expect("first run");
    drop(store);

    let reversed: Vec<&str> = fx.htmls.iter().rev().map(String::as_str).collect();
    let mut store = Store::open(&dir, cfg, Obs::disabled()).expect("reopen");
    let err = FormPageCorpus::from_html_ingest_resumable(
        reversed,
        &ModelOptions::default(),
        &IngestLimits::default(),
        ExecPolicy::Auto,
        &Obs::disabled(),
        &mut store,
        true,
    )
    .expect_err("different pages must not resume this checkpoint");
    assert!(
        matches!(err, StoreError::FingerprintMismatch { .. }),
        "expected FingerprintMismatch, got {err:?}"
    );
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
}
