//! End-to-end acceptance for the cluster-then-search stack: cluster a
//! synthetic web, build the routed inverted index through
//! `SearchPipeline`, and require routed retrieval to hit the recall bar
//! against brute-force while scanning measurably fewer postings.

use cafc::prelude::*;
use cafc::{Algorithm, CafcChConfig, Pipeline, SearchConfig, SearchPipeline};
use cafc_corpus::{generate, CorpusConfig};
use cafc_text::TermId;

/// Cluster the small synthetic web and hand back the clustered corpus.
fn clustered() -> cafc::PipelineOutcome {
    let web = generate(&CorpusConfig::small(7));
    let targets = web.form_page_ids();
    Pipeline::builder()
        .algorithm(Algorithm::CafcCh(CafcChConfig::paper_default(8)))
        .seed(1)
        .build()
        .run_graph(&web.graph, &targets)
        .expect("synthetic web satisfies CAFC-CH")
}

/// Deterministic query workload matching the paper's premise: users ask
/// about a *domain*, so queries are built from each cluster's most
/// discriminative terms — high within-cluster mass, concentrated there.
fn queries(outcome: &cafc::PipelineOutcome) -> Vec<String> {
    let num_terms = outcome.corpus.dict.len();
    let clusters = outcome.partition.clusters();
    let mut total = vec![0.0_f64; num_terms];
    let mut per = vec![vec![0.0_f64; num_terms]; clusters.len()];
    for (ci, members) in clusters.iter().enumerate() {
        for &m in members {
            for &(term, tf) in outcome.corpus.pc_tf[m].entries() {
                per[ci][term.index()] += tf;
                total[term.index()] += tf;
            }
        }
    }
    let mut queries = Vec::new();
    for mass in &per {
        let mut cand: Vec<usize> = (0..num_terms)
            .filter(|&t| total[t] > 0.0 && mass[t] / total[t] >= 0.7)
            .collect();
        cand.sort_by(|&a, &b| mass[b].total_cmp(&mass[a]).then_with(|| a.cmp(&b)));
        let top: Vec<&str> = cand
            .iter()
            .take(4)
            .map(|&t| outcome.corpus.dict.term(TermId(t as u32)))
            .collect();
        queries.extend(top.iter().map(|t| t.to_string()));
        for pair in top.windows(2) {
            queries.push(format!("{} {}", pair[0], pair[1]));
        }
    }
    queries
}

#[test]
fn routed_retrieval_meets_the_recall_bar_with_fewer_postings() {
    let outcome = clustered();
    // Cap each query below what its full scan touches, so routing has to
    // actually skip shards to stay under the budget.
    let budget_cap = 32;
    let index = SearchPipeline::builder()
        .config(SearchConfig::new().with_budget(Some(budget_cap)).with_k(10))
        .build()
        .index(&outcome.corpus, Some(&outcome.partition));

    let mut recall_sum = 0.0;
    let mut scored_queries = 0usize;
    let mut routed_postings = 0usize;
    let mut full_postings = 0usize;
    for q in queries(&outcome) {
        let routed = index.search_k(&q, 10);
        let reference = index.reference(&q, 10);
        routed_postings += routed.stats.postings_scanned;
        full_postings += reference.stats.postings_scanned;
        if reference.hits.is_empty() {
            continue;
        }
        let found = reference
            .hits
            .iter()
            .filter(|r| routed.hits.iter().any(|h| h.doc == r.doc))
            .count();
        recall_sum += found as f64 / reference.hits.len() as f64;
        scored_queries += 1;
    }
    assert!(scored_queries > 30, "workload collapsed: {scored_queries}");
    let recall = recall_sum / scored_queries as f64;
    assert!(
        recall >= 0.95,
        "recall@10 {recall:.4} below the 0.95 acceptance bar"
    );
    assert!(
        routed_postings < full_postings,
        "routing scanned no fewer postings: {routed_postings} vs {full_postings}"
    );
}

#[test]
fn routed_and_reference_agree_exactly_without_a_budget() {
    let outcome = clustered();
    let index = SearchPipeline::builder()
        .config(SearchConfig::new().with_k(10))
        .build()
        .index(&outcome.corpus, Some(&outcome.partition));
    for q in queries(&outcome).into_iter().take(20) {
        let routed = index.search_k(&q, 10);
        let reference = index.reference(&q, 10);
        assert_eq!(routed.hits, reference.hits, "query {q:?}");
    }
}

#[test]
fn search_pipeline_is_deterministic_across_exec_policies() {
    let outcome = clustered();
    let build = |policy| {
        SearchPipeline::builder()
            .config(SearchConfig::new().with_budget(Some(1_500)))
            .exec(policy)
            .build()
            .index(&outcome.corpus, Some(&outcome.partition))
    };
    let serial = build(ExecPolicy::Serial);
    let parallel = build(ExecPolicy::Parallel { threads: 4 });
    assert_eq!(serial.num_postings(), parallel.num_postings());
    for q in queries(&outcome).into_iter().take(20) {
        let a = serial.search(&q);
        let b = parallel.search(&q);
        assert_eq!(a.hits, b.hits, "query {q:?}");
        assert_eq!(a.stats, b.stats, "query {q:?}");
    }
}
