//! Determinism contract of the execution layer: every [`ExecPolicy`] —
//! serial, one worker, an awkward prime number of workers, auto-detected —
//! must produce *byte-identical* results: the same partitions, the same
//! ingestion reports in the same order, the same floating-point quality
//! numbers down to the last bit. Also proves the redesigned [`Pipeline`]
//! front door reproduces the legacy free-function API exactly.
//!
//! CI runs this suite under `CAFC_TEST_THREADS=1` and `=4`; the variable
//! adds one more policy to every sweep.

use cafc::prelude::*;
use cafc::{cafc_c, cafc_ch, HubClusterOptions};
use cafc_corpus::{generate, mutate_page, page_rng, CorpusConfig, Mutation, SyntheticWeb};
use cafc_eval::EntropyBase;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The policies every assertion sweeps. `CAFC_TEST_THREADS=N` (CI matrix)
/// appends one more `Parallel { threads: N }` entry.
fn policies() -> Vec<ExecPolicy> {
    let mut ps = vec![
        ExecPolicy::Serial,
        ExecPolicy::Parallel { threads: 1 },
        ExecPolicy::Parallel { threads: 7 },
        ExecPolicy::Auto,
    ];
    if let Ok(v) = std::env::var("CAFC_TEST_THREADS") {
        let threads: usize = v
            .parse()
            .expect("CAFC_TEST_THREADS must be a positive thread count");
        assert!(threads >= 1, "CAFC_TEST_THREADS must be >= 1");
        ps.push(ExecPolicy::Parallel { threads });
    }
    ps
}

fn web() -> SyntheticWeb {
    generate(&CorpusConfig::small(7))
}

fn quality_bits(partition: &Partition, labels: &[cafc_corpus::Domain]) -> (u64, u64) {
    let clusters = partition.clusters();
    (
        cafc_eval::entropy(clusters, labels, EntropyBase::Two).to_bits(),
        cafc_eval::f_measure(clusters, labels).to_bits(),
    )
}

/// CAFC-CH end to end over a web graph: partitions, hub statistics and
/// quality numbers must not depend on the thread count.
#[test]
fn graph_cafc_ch_bitwise_identical_across_policies() {
    let web = web();
    let targets = web.form_page_ids();
    let labels = web.labels();
    let run = |policy: ExecPolicy| {
        Pipeline::builder()
            .algorithm(Algorithm::CafcCh(CafcChConfig::paper_default(8).with_hub(
                HubClusterOptions {
                    min_cardinality: 4,
                    ..Default::default()
                },
            )))
            .exec(policy)
            .seed(2)
            .build()
            .run_graph(&web.graph, &targets)
            .expect("graph input satisfies CAFC-CH")
    };
    let baseline = run(ExecPolicy::Serial);
    let baseline_q = quality_bits(&baseline.partition, &labels);
    for policy in policies() {
        let out = run(policy);
        assert_eq!(
            out.partition, baseline.partition,
            "partition diverged under {policy:?}"
        );
        assert_eq!(
            quality_bits(&out.partition, &labels),
            baseline_q,
            "entropy/F bits diverged under {policy:?}"
        );
    }
}

/// Hardened ingestion of adversarial HTML: the `IngestReport` — outcome
/// order, kept indices, degradation reasons, accounting — must be
/// identical under every policy, as must the clustering of the survivors.
#[test]
fn html_ingest_identical_across_policies() {
    let web = web();
    let targets = web.form_page_ids();
    let menu = Mutation::parse_list("all").expect("'all' names the full menu");
    let mutated: Vec<String> = targets
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let html = web.graph.html(*p).unwrap_or("");
            mutate_page(html, &menu, 2, &mut page_rng(5, i))
        })
        .collect();
    let pages: Vec<&str> = mutated.iter().map(String::as_str).collect();

    let run = |policy: ExecPolicy| {
        Pipeline::builder()
            .algorithm(Algorithm::CafcC { k: 8 })
            .ingest_limits(IngestLimits::new())
            .exec(policy)
            .seed(3)
            .build()
            .run_html(&pages)
            .expect("CafcC accepts HTML input")
    };
    let baseline = run(ExecPolicy::Serial);
    let baseline_report = baseline.ingest.as_ref().expect("limits configured");
    assert!(baseline_report.is_accounted());
    assert_eq!(baseline_report.total(), pages.len());
    for policy in policies() {
        let out = run(policy);
        let report = out.ingest.as_ref().expect("limits configured");
        assert_eq!(
            report, baseline_report,
            "IngestReport diverged under {policy:?}"
        );
        assert_eq!(
            out.partition, baseline.partition,
            "survivor partition diverged under {policy:?}"
        );
    }
}

/// Every HTML-capable algorithm behind the pipeline is policy-invariant.
#[test]
fn html_algorithms_identical_across_policies() {
    let web = web();
    let targets = web.form_page_ids();
    let htmls: Vec<&str> = targets
        .iter()
        .map(|p| web.graph.html(*p).unwrap_or(""))
        .collect();
    let algorithms = [
        Algorithm::CafcC { k: 6 },
        Algorithm::Hac {
            k: 6,
            linkage: Linkage::Average,
        },
        Algorithm::Bisect { k: 6, trials: 2 },
    ];
    for algorithm in algorithms {
        let run = |policy: ExecPolicy| {
            Pipeline::builder()
                .algorithm(algorithm.clone())
                .exec(policy)
                .seed(11)
                .build()
                .run_html(&htmls)
                .expect("HTML input suffices")
        };
        let baseline = run(ExecPolicy::Serial);
        for policy in policies() {
            let out = run(policy);
            assert_eq!(
                out.partition, baseline.partition,
                "{algorithm:?} diverged under {policy:?}"
            );
        }
    }
}

/// Observability is read-only: a pipeline with a metrics sink installed
/// (as `cafc cluster --metrics` does) must produce a byte-identical
/// partition to the same pipeline with no sink, under every policy.
#[test]
fn metrics_sink_does_not_perturb_clustering() {
    let web = web();
    let targets = web.form_page_ids();
    let labels = web.labels();
    let run = |policy: ExecPolicy, obs: cafc::Obs| {
        Pipeline::builder()
            .algorithm(Algorithm::CafcCh(CafcChConfig::paper_default(8).with_hub(
                HubClusterOptions {
                    min_cardinality: 4,
                    ..Default::default()
                },
            )))
            .exec(policy)
            .seed(2)
            .obs(obs)
            .build()
            .run_graph(&web.graph, &targets)
            .expect("graph input satisfies CAFC-CH")
    };
    let silent = run(ExecPolicy::Serial, cafc::Obs::disabled());
    let silent_q = quality_bits(&silent.partition, &labels);
    for policy in policies() {
        let obs = cafc::Obs::enabled();
        let instrumented = run(policy, obs.clone());
        assert_eq!(
            instrumented.partition, silent.partition,
            "metrics sink changed the partition under {policy:?}"
        );
        assert_eq!(
            quality_bits(&instrumented.partition, &labels),
            silent_q,
            "metrics sink changed quality bits under {policy:?}"
        );
        assert!(
            !obs.snapshot().is_empty(),
            "instrumented run must actually record metrics"
        );
    }
}

/// The pipeline is a *wrapper*, not a reimplementation: with the same seed
/// it must reproduce the legacy `cafc_c` free function exactly.
#[test]
fn pipeline_matches_legacy_cafc_c() {
    let web = web();
    let targets = web.form_page_ids();
    let corpus = FormPageCorpus::from_graph(&web.graph, &targets, &ModelOptions::default());
    let space = FormPageSpace::new(&corpus, FeatureConfig::combined());
    let mut rng = StdRng::seed_from_u64(4);
    let legacy = cafc_c(&space, 8, &KMeansOptions::default(), &mut rng);

    for policy in policies() {
        let out = Pipeline::builder()
            .algorithm(Algorithm::CafcC { k: 8 })
            .exec(policy)
            .seed(4)
            .build()
            .run_graph(&web.graph, &targets)
            .expect("CafcC accepts graph input");
        assert_eq!(
            out.partition, legacy.partition,
            "pipeline CafcC != legacy cafc_c under {policy:?}"
        );
    }
}

/// Same for the legacy `cafc_ch` free function, including the seeding
/// statistics the outcome reports.
#[test]
fn pipeline_matches_legacy_cafc_ch() {
    let web = web();
    let targets = web.form_page_ids();
    let config = CafcChConfig::paper_default(8).with_hub(HubClusterOptions {
        min_cardinality: 4,
        ..Default::default()
    });
    let corpus = FormPageCorpus::from_graph(&web.graph, &targets, &ModelOptions::default());
    let space = FormPageSpace::new(&corpus, FeatureConfig::combined());
    let mut rng = StdRng::seed_from_u64(6);
    let legacy = cafc_ch(&web.graph, &targets, &space, &config, &mut rng);

    for policy in policies() {
        let out = Pipeline::builder()
            .algorithm(Algorithm::CafcCh(config.clone()))
            .exec(policy)
            .seed(6)
            .build()
            .run_graph(&web.graph, &targets)
            .expect("graph input satisfies CAFC-CH");
        assert_eq!(
            out.partition, legacy.outcome.partition,
            "pipeline CafcCh != legacy cafc_ch under {policy:?}"
        );
        match out.details {
            AlgorithmDetails::CafcCh {
                hub_seeds,
                padded_seeds,
                iterations,
                ..
            } => {
                assert_eq!(hub_seeds, legacy.hub_seeds);
                assert_eq!(padded_seeds, legacy.padded_seeds);
                assert_eq!(iterations, legacy.outcome.iterations);
            }
            other => panic!("CafcCh must report CafcCh details, got {other:?}"),
        }
    }
}
