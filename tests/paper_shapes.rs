//! The paper's qualitative claims as executable assertions, at paper
//! scale. Each test pins one "who wins" relationship from the evaluation;
//! absolute values live in EXPERIMENTS.md.
//!
//! These build the 454-page corpus once and are the slowest tests in the
//! suite; they stay well under a minute even in debug builds.

use cafc::{
    cafc_c, CafcChConfig, FeatureConfig, FormPageCorpus, FormPageSpace, HubClusterOptions,
    KMeansOptions, LocationWeights, ModelOptions,
};
use cafc_corpus::{generate, CorpusConfig, Domain, SyntheticWeb};
use cafc_eval::{entropy, f_measure, EntropyBase};
use cafc_webgraph::PageId;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;

struct Env {
    web: SyntheticWeb,
    targets: Vec<PageId>,
    labels: Vec<Domain>,
    corpus: FormPageCorpus,
}

fn env() -> &'static Env {
    static ENV: OnceLock<Env> = OnceLock::new();
    ENV.get_or_init(|| {
        let web = generate(&CorpusConfig::default());
        let targets = web.form_page_ids();
        let labels = web.labels();
        let corpus = FormPageCorpus::from_graph(&web.graph, &targets, &ModelOptions::default());
        Env {
            web,
            targets,
            labels,
            corpus,
        }
    })
}

fn avg_cafc_c(space: &FormPageSpace<'_>, runs: u64) -> (f64, f64) {
    let labels = &env().labels;
    let mut e = 0.0;
    let mut f = 0.0;
    for run in 0..runs {
        let mut rng = StdRng::seed_from_u64(run);
        let out = cafc_c(space, 8, &KMeansOptions::default(), &mut rng);
        e += entropy(out.partition.clusters(), labels, EntropyBase::Two);
        f += f_measure(out.partition.clusters(), labels);
    }
    (e / runs as f64, f / runs as f64)
}

fn run_ch(space: &FormPageSpace<'_>) -> (f64, f64) {
    let e = env();
    let mut rng = StdRng::seed_from_u64(1);
    let out = cafc::cafc_ch(
        &e.web.graph,
        &e.targets,
        space,
        &CafcChConfig::paper_default(8).with_hub(HubClusterOptions::default()),
        &mut rng,
    );
    (
        entropy(
            out.outcome.partition.clusters(),
            &e.labels,
            EntropyBase::Two,
        ),
        f_measure(out.outcome.partition.clusters(), &e.labels),
    )
}

/// Figure 2, claim 1: combining FC and PC beats either space alone
/// (CAFC-C, averaged).
#[test]
fn fig2_combined_beats_single_spaces_cafc_c() {
    let e = env();
    let fc = avg_cafc_c(&FormPageSpace::new(&e.corpus, FeatureConfig::FcOnly), 12);
    let pc = avg_cafc_c(&FormPageSpace::new(&e.corpus, FeatureConfig::PcOnly), 12);
    let both = avg_cafc_c(
        &FormPageSpace::new(&e.corpus, FeatureConfig::combined()),
        12,
    );
    assert!(both.0 < fc.0, "entropy: FC+PC {} !< FC {}", both.0, fc.0);
    assert!(both.0 < pc.0, "entropy: FC+PC {} !< PC {}", both.0, pc.0);
    assert!(both.1 > fc.1, "F: FC+PC {} !> FC {}", both.1, fc.1);
}

/// Figure 2, claim 2: CAFC-CH improves on CAFC-C in both metrics for the
/// combined configuration, substantially.
#[test]
fn fig2_hubs_improve_both_metrics() {
    let e = env();
    let space = FormPageSpace::new(&e.corpus, FeatureConfig::combined());
    let (c_e, c_f) = avg_cafc_c(&space, 5);
    let (ch_e, ch_f) = run_ch(&space);
    assert!(
        ch_e < c_e * 0.75,
        "entropy {c_e} -> {ch_e}: not a substantial drop"
    );
    assert!(ch_f > c_f, "F {c_f} -> {ch_f}: no improvement");
}

/// §4.4: uniform weights hurt CAFC-CH, but uniform CAFC-CH still beats
/// differentiated CAFC-C.
#[test]
fn loc_weights_ablation_shape() {
    let e = env();
    let uniform_corpus = FormPageCorpus::from_graph(
        &e.web.graph,
        &e.targets,
        &ModelOptions::new().with_weights(LocationWeights::uniform()),
    );
    let diff_space = FormPageSpace::new(&e.corpus, FeatureConfig::combined());
    let uni_space = FormPageSpace::new(&uniform_corpus, FeatureConfig::combined());
    let (diff_e, diff_f) = run_ch(&diff_space);
    let (uni_e, uni_f) = run_ch(&uni_space);
    let (c_e, _) = avg_cafc_c(&diff_space, 5);
    assert!(
        diff_e <= uni_e,
        "differentiated {diff_e} !<= uniform {uni_e}"
    );
    assert!(
        diff_f >= uni_f,
        "differentiated F {diff_f} !>= uniform {uni_f}"
    );
    assert!(
        uni_e < c_e,
        "uniform CAFC-CH {uni_e} !< differentiated CAFC-C {c_e}"
    );
}

/// §4.2: single-attribute forms are handled — the overwhelming majority
/// end up correctly clustered in the best configuration.
#[test]
fn single_attribute_forms_mostly_correct() {
    let e = env();
    let space = FormPageSpace::new(&e.corpus, FeatureConfig::combined());
    let mut rng = StdRng::seed_from_u64(1);
    let out = cafc::cafc_ch(
        &e.web.graph,
        &e.targets,
        &space,
        &CafcChConfig::paper_default(8),
        &mut rng,
    );
    let wrong = cafc_eval::misclustered(out.outcome.partition.clusters(), &e.labels);
    let singles_total = e
        .web
        .form_pages
        .iter()
        .filter(|r| r.single_attribute)
        .count();
    let singles_wrong = wrong
        .iter()
        .filter(|&&i| e.web.form_pages[i].single_attribute)
        .count();
    assert!(
        singles_wrong * 4 < singles_total,
        "{singles_wrong} of {singles_total} single-attribute pages misclustered"
    );
}
