//! End-to-end torture tests: the seeded HTML mutator feeding the hardened
//! ingestion pipeline. Determinism (same seed ⇒ byte-identical corpus),
//! the accounting invariant (ok + degraded + quarantined == total), and
//! panic-freedom across every mutation kind are all checked here, at the
//! same integration level the `cafc torture` subcommand operates at.

use cafc::{FormPageCorpus, IngestLimits, ModelOptions, PageOutcome};
use cafc_corpus::{generate, mutate_page, page_rng, CorpusConfig, Mutation};

/// The clean HTML of every form page in a small synthetic web.
fn clean_pages(corpus_seed: u64) -> Vec<String> {
    let web = generate(&CorpusConfig::small(corpus_seed));
    web.form_pages
        .iter()
        .map(|rec| web.graph.html(rec.page).unwrap_or("").to_owned())
        .collect()
}

fn mutate_all(pages: &[String], seed: u64, menu: &[Mutation], per_page: usize) -> Vec<String> {
    pages
        .iter()
        .enumerate()
        .map(|(i, html)| mutate_page(html, menu, per_page, &mut page_rng(seed, i)))
        .collect()
}

#[test]
fn mutator_is_deterministic_across_runs() {
    let pages = clean_pages(5);
    let a = mutate_all(&pages, 7, &Mutation::ALL, 3);
    let b = mutate_all(&pages, 7, &Mutation::ALL, 3);
    assert_eq!(a, b, "same seed must produce byte-identical corpora");

    let c = mutate_all(&pages, 8, &Mutation::ALL, 3);
    assert_ne!(a, c, "a different seed must mutate differently");
}

#[test]
fn mutator_is_independent_of_batching() {
    // Page i's mutation depends only on (seed, i), not on which other
    // pages were mutated before it.
    let pages = clean_pages(5);
    let full = mutate_all(&pages, 7, &Mutation::ALL, 2);
    let solo = mutate_page(&pages[9], &Mutation::ALL, 2, &mut page_rng(7, 9));
    assert_eq!(full[9], solo);
}

#[test]
fn ingest_accounting_invariant_holds_under_torture() {
    let pages = clean_pages(11);
    for seed in [0u64, 7, 42] {
        let mutated = mutate_all(&pages, seed, &Mutation::ALL, 3);
        let (corpus, report) = FormPageCorpus::from_html_ingest(
            mutated.iter().map(String::as_str),
            &ModelOptions::default(),
            &IngestLimits::default(),
        );
        assert_eq!(report.total(), pages.len());
        assert_eq!(
            report.ok() + report.degraded() + report.quarantined(),
            report.total(),
            "seed {seed}: every page must have exactly one outcome"
        );
        assert!(report.is_accounted(), "seed {seed}");
        assert_eq!(corpus.len(), report.kept.len(), "seed {seed}");
        // kept maps corpus rows to input pages, in order, skipping exactly
        // the quarantined ones.
        let expected_kept: Vec<usize> = report
            .outcomes
            .iter()
            .enumerate()
            .filter(|(_, o)| o.is_kept())
            .map(|(i, _)| i)
            .collect();
        assert_eq!(report.kept, expected_kept, "seed {seed}");
    }
}

#[test]
fn every_single_mutation_ingests_without_panic() {
    let pages = clean_pages(3);
    for mutation in Mutation::ALL {
        let mutated = mutate_all(&pages, 13, &[mutation], 3);
        let (_, report) = FormPageCorpus::from_html_ingest(
            mutated.iter().map(String::as_str),
            &ModelOptions::default(),
            &IngestLimits::default(),
        );
        assert!(report.is_accounted(), "{}", mutation.label());
    }
}

#[test]
fn clean_corpus_ingests_mostly_ok() {
    let pages = clean_pages(5);
    let (corpus, report) = FormPageCorpus::from_html_ingest(
        pages.iter().map(String::as_str),
        &ModelOptions::default(),
        &IngestLimits::default(),
    );
    assert_eq!(corpus.len(), pages.len(), "clean pages all survive");
    assert_eq!(report.quarantined(), 0);
    assert!(
        report.ok() * 10 >= report.total() * 9,
        "at least 90% of clean pages should be pristine: {} of {}",
        report.ok(),
        report.total()
    );
}

#[test]
fn tight_limits_quarantine_rather_than_panic() {
    let pages = clean_pages(5);
    let limits = IngestLimits::new()
        .with_hard_max_bytes(512)
        .with_soft_max_bytes(256)
        .with_max_terms(16);
    let (corpus, report) = FormPageCorpus::from_html_ingest(
        pages.iter().map(String::as_str),
        &ModelOptions::default(),
        &limits,
    );
    assert!(report.is_accounted());
    assert_eq!(corpus.len(), report.kept.len());
    // With a 512-byte hard limit most generated pages are rejected whole.
    assert!(report.quarantined() > 0);
    for (i, outcome) in report.outcomes.iter().enumerate() {
        if let PageOutcome::Quarantined { .. } = outcome {
            assert!(!report.kept.contains(&i));
        }
    }
}
