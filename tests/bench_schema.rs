//! Schema regression tests for the committed `BENCH_<n>.json` trajectory.
//!
//! The bench files are a contract: every later PR gets held to their
//! numbers, so their schemas only ever gain fields — never lose or rename
//! them. This suite parses the committed artifacts with a deliberately
//! small validator (the workspace's `serde_json` is a stub) and pins:
//!
//! * `BENCH_8.json` — PR 8's loadgen schema (flat object, loadgen keys);
//! * `BENCH_10.json` — this PR's batch schema (digest + stages);
//! * digest determinism — two same-config `run_bench` calls render
//!   byte-identical digests, the property the CI `bench-smoke` job diffs
//!   end to end through the CLI.

use cafc::{run_bench, BenchConfig};
use cafc_corpus::{generate_shard, ShardedCorpusConfig};

/// Read a committed repo-root artifact.
fn committed(name: &str) -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../");
    std::fs::read_to_string(format!("{path}{name}"))
        .unwrap_or_else(|e| panic!("cannot read committed {name}: {e}"))
}

/// The JSON value kinds the validator distinguishes.
#[derive(Clone, Copy, PartialEq, Debug)]
enum Kind {
    /// An unsigned integer literal.
    Uint,
    /// Any number literal (integer or float).
    Number,
    /// A quoted 16-hex-digit hash.
    Hash,
    /// A bare `true`/`false`.
    Bool,
    /// A quoted string.
    Str,
}

/// Assert `"key": <value>` appears in `json` with a value of `kind`.
/// Scans textually — enough for a fixed-schema document we render
/// ourselves, with no nested reuse of key names across kinds.
fn require_key(json: &str, key: &str, kind: Kind) {
    let needle = format!("\"{key}\":");
    let at = json
        .find(&needle)
        .unwrap_or_else(|| panic!("missing key {key:?}"));
    let value = json[at + needle.len()..].trim_start();
    let ok = match kind {
        Kind::Uint => value.chars().next().is_some_and(|c| c.is_ascii_digit()),
        Kind::Number => value
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_digit() || c == '-'),
        Kind::Hash => {
            value.starts_with('"')
                && value.len() > 17
                && value[1..17].chars().all(|c| c.is_ascii_hexdigit())
                && value[17..].starts_with('"')
        }
        Kind::Bool => value.starts_with("true") || value.starts_with("false"),
        Kind::Str => value.starts_with('"'),
    };
    assert!(
        ok,
        "key {key:?} has wrong shape for {kind:?}: {:?}…",
        &value[..value.len().min(24)]
    );
}

/// Braces and brackets balance — the artifact is at least well-formed.
fn require_balanced(json: &str) {
    let (mut brace, mut bracket, mut in_str) = (0i64, 0i64, false);
    let mut prev = '\0';
    for c in json.chars() {
        if in_str {
            if c == '"' && prev != '\\' {
                in_str = false;
            }
        } else {
            match c {
                '"' => in_str = true,
                '{' => brace += 1,
                '}' => brace -= 1,
                '[' => bracket += 1,
                ']' => bracket -= 1,
                _ => {}
            }
            assert!(brace >= 0 && bracket >= 0, "close before open");
        }
        prev = if prev == '\\' && c == '\\' { '\0' } else { c };
    }
    assert_eq!(brace, 0, "unbalanced braces");
    assert_eq!(bracket, 0, "unbalanced brackets");
    assert!(!in_str, "unterminated string");
}

#[test]
fn bench_8_keeps_the_loadgen_schema() {
    let json = committed("BENCH_8.json");
    require_balanced(&json);
    assert!(json.contains("\"bench\": \"loadgen\""), "bench tag changed");
    for (key, kind) in [
        ("seed", Kind::Uint),
        ("queries", Kind::Uint),
        ("offered_qps", Kind::Number),
        ("achieved_qps", Kind::Number),
        ("p50_us", Kind::Number),
        ("p99_us", Kind::Number),
        ("p999_us", Kind::Number),
        ("stream_hash", Kind::Hash),
        ("results_hash", Kind::Hash),
        ("recall_at_10", Kind::Number),
        ("routed_postings", Kind::Uint),
        ("full_postings", Kind::Uint),
        ("index_docs", Kind::Uint),
        ("index_postings", Kind::Uint),
        ("index_build_ms", Kind::Number),
        ("pages_per_sec", Kind::Number),
    ] {
        require_key(&json, key, kind);
    }
}

#[test]
fn bench_10_keeps_the_batch_schema() {
    let json = committed("BENCH_10.json");
    require_balanced(&json);
    assert!(json.contains("\"bench\": \"batch\""), "bench tag changed");
    for (key, kind) in [
        ("pages", Kind::Uint),
        ("shard_pages", Kind::Uint),
        ("seed", Kind::Uint),
        ("k", Kind::Uint),
        ("hac_sample", Kind::Uint),
        ("pages_ok", Kind::Uint),
        ("pages_degraded", Kind::Uint),
        ("pages_quarantined", Kind::Uint),
        ("dict_terms", Kind::Uint),
        ("corpus_bytes", Kind::Uint),
        ("kmeans_iterations", Kind::Uint),
        ("kmeans_converged", Kind::Bool),
        ("kmeans_clusters", Kind::Uint),
        ("assignment_hash", Kind::Hash),
        ("cluster_sizes_hash", Kind::Hash),
        ("hac_hash", Kind::Hash),
        ("threads", Kind::Uint),
        ("peak_rss_kb", Kind::Uint),
        ("total_wall_ms", Kind::Number),
        ("digest", Kind::Str), // object value — the `{` fails Str, so:
    ]
    .into_iter()
    .filter(|(k, _)| *k != "digest")
    {
        require_key(&json, key, kind);
    }
    assert!(json.contains("\"digest\": {"), "digest object missing");
    // One stage entry per batch leg, in pipeline order.
    let order = ["gen", "ingest", "vectorize", "kmeans", "hac_sample"];
    let mut last = 0;
    for stage in order {
        let needle = format!("\"stage\": \"{stage}\"");
        let at = json
            .find(&needle)
            .unwrap_or_else(|| panic!("no {stage} stage"));
        assert!(at > last, "stage {stage} out of order");
        last = at;
    }
    for key in ["items", "wall_ms", "pages_per_sec"] {
        assert!(
            json.matches(&format!("\"{key}\":")).count() >= order.len(),
            "stage field {key} missing from some stages"
        );
    }
    // The committed artifact is the accepted 10^5 run.
    require_key(&json, "pages", Kind::Uint);
    assert!(
        json.contains("\"pages\": 100000"),
        "BENCH_10 must be the 10^5 run"
    );
}

/// Two same-config runs render byte-identical digests, and the digest
/// lines embedded in the full `--json` document match the standalone
/// digest — what the CI `bench-smoke` job diffs through the CLI.
#[test]
fn same_seed_runs_render_identical_digests() {
    let corpus = ShardedCorpusConfig::new()
        .with_total_form_pages(120)
        .with_shard_pages(32)
        .with_seed(21);
    let num_shards = corpus.num_shards();
    let config = BenchConfig::new()
        .with_pages(120)
        .with_shard_pages(32)
        .with_seed(21)
        .with_k(4)
        .with_hac_sample(30);
    let source = |cfg: ShardedCorpusConfig| {
        move |s: usize| {
            if s >= num_shards {
                None
            } else {
                Some(generate_shard(&cfg, s))
            }
        }
    };
    let a = run_bench(&config, source(corpus.clone()));
    let b = run_bench(&config.clone().with_threads(4), source(corpus));
    assert_eq!(
        a.render_digest(),
        b.render_digest(),
        "same-seed digests must be byte-identical across thread counts"
    );
    for line in a.render_digest().lines().filter(|l| l.starts_with("  \"")) {
        assert!(
            a.render_json().contains(line.trim()),
            "digest line {line:?} missing from the full report"
        );
    }
}
