//! Classify newly discovered hidden-web sources against an existing
//! clustering — the paper's §5 bootstrap: "Once the clusters are built and
//! properly labeled with the domain name, they can be used as the basis to
//! automatically classify new sources."
//!
//! We cluster 80 % of the corpus with CAFC-CH, hold out 20 % as "newly
//! discovered" sources, assign each holdout to its nearest cluster
//! centroid, and score against the gold labels.
//!
//! ```text
//! cargo run --release --example classify_new_sources
//! ```

use cafc::{
    assign_to_clusters, cafc_ch, CafcChConfig, FeatureConfig, FormPageCorpus, FormPageSpace,
    ModelOptions, Partition,
};
use cafc_corpus::{generate, CorpusConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let web = generate(&CorpusConfig::small(77));
    let targets = web.form_page_ids();
    let labels = web.labels();

    // One shared corpus so IDF statistics cover known + new pages alike.
    let corpus = FormPageCorpus::from_graph(&web.graph, &targets, &ModelOptions::default());
    let space = FormPageSpace::new(&corpus, FeatureConfig::combined());

    // Hold out every 5th page as a "new source".
    let known: Vec<usize> = (0..targets.len()).filter(|i| i % 5 != 0).collect();
    let new: Vec<usize> = (0..targets.len()).filter(|i| i % 5 == 0).collect();
    println!(
        "{} known sources, {} newly discovered",
        known.len(),
        new.len()
    );

    // Cluster the known subset. CAFC-CH runs over the *full* target list;
    // to cluster only the known pages we restrict afterwards (hub evidence
    // does not depend on the holdout split).
    let mut rng = StdRng::seed_from_u64(3);
    let config = CafcChConfig::paper_default(8).with_hub(cafc::HubClusterOptions {
        min_cardinality: 4,
        ..Default::default()
    });
    let full = cafc_ch(&web.graph, &targets, &space, &config, &mut rng);
    let known_clusters: Vec<Vec<usize>> = full
        .outcome
        .partition
        .clusters()
        .iter()
        .map(|c| c.iter().copied().filter(|i| known.contains(i)).collect())
        .collect();
    let known_partition = Partition::new(known_clusters, targets.len());

    // Each known cluster inherits the majority gold label (the "properly
    // labeled with the domain name" step — here automated by the corpus).
    let cluster_label: Vec<Option<&str>> = known_partition
        .clusters()
        .iter()
        .map(|members| {
            let mut counts = std::collections::HashMap::new();
            for &m in members {
                *counts.entry(labels[m].name()).or_insert(0usize) += 1;
            }
            counts.into_iter().max_by_key(|&(_, c)| c).map(|(l, _)| l)
        })
        .collect();

    // Assign the new sources and score.
    let assigned = assign_to_clusters(&space, &known_partition, &new);
    let mut correct = 0;
    for &(item, cluster) in &assigned {
        if cluster_label[cluster] == Some(labels[item].name()) {
            correct += 1;
        }
    }
    println!(
        "classified {} new sources, {} correct ({:.1}%)",
        new.len(),
        correct,
        100.0 * correct as f64 / new.len() as f64
    );

    // Show a few assignments.
    for &(item, cluster) in assigned.iter().take(6) {
        println!(
            "  {} -> {} (gold: {})",
            web.graph.url(targets[item]),
            cluster_label[cluster].unwrap_or("?"),
            labels[item].name()
        );
    }
}
