//! Query-based exploration of a clustering — the paper's §6: "it is
//! important to provide means for applications and users to explore the
//! resulting clusters ... visual and query-based interfaces."
//!
//! ```text
//! cargo run --release --example explore_clusters
//! ```

use cafc::{cafc_ch, CafcChConfig, FeatureConfig, FormPageCorpus, FormPageSpace, ModelOptions};
use cafc_corpus::{generate, CorpusConfig};
use cafc_explore::{html_report, text_report, ClusterIndex};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // Cluster a synthetic deep web.
    let web = generate(&CorpusConfig::small(2024));
    let targets = web.form_page_ids();
    let corpus = FormPageCorpus::from_graph(&web.graph, &targets, &ModelOptions::default());
    let space = FormPageSpace::new(&corpus, FeatureConfig::combined());
    let mut rng = StdRng::seed_from_u64(9);
    let config = CafcChConfig::paper_default(8).with_hub(cafc::HubClusterOptions {
        min_cardinality: 4,
        ..Default::default()
    });
    let result = cafc_ch(&web.graph, &targets, &space, &config, &mut rng);

    // Build the searchable index.
    let index =
        ClusterIndex::from_graph(&corpus, &result.outcome.partition, &web.graph, &targets, 6);

    // Show the directory header.
    let report = text_report(&index);
    for line in report.lines().take(14) {
        println!("{line}");
    }
    println!("...\n");

    // Query-based exploration.
    for query in [
        "cheap flights this summer",
        "find a job in engineering",
        "rock albums on vinyl",
    ] {
        println!("query: {query:?}");
        for hit in index.search(query).into_iter().take(2) {
            let summary = &index.summaries()[hit.cluster];
            println!(
                "  cluster {:.3}  {} ({} databases)",
                hit.score,
                summary.label,
                summary.entries.len()
            );
        }
        for hit in index.search_pages(query, 2) {
            if let Some(entry) = hit.item.and_then(|i| index.entry(i)) {
                println!("  page    {:.3}  {}", hit.score, entry.url);
            }
        }
        println!();
    }

    // Write the HTML directory next to the target dir for inspection.
    let out = std::env::temp_dir().join("cafc-directory.html");
    std::fs::write(&out, html_report(&index)).expect("write report");
    println!("HTML directory written to {}", out.display());
}
