//! The full acquisition-to-organization pipeline the paper's system sits
//! in: crawl the web for forms, filter out non-searchable ones with the
//! generic form classifier, then organize the survivors with CAFC-CH.
//!
//! ```text
//! cargo run --release --example crawl_and_cluster
//! ```

use cafc::{cafc_ch, CafcChConfig, FeatureConfig, FormPageCorpus, FormPageSpace, ModelOptions};
use cafc_corpus::{generate, CorpusConfig};
use cafc_crawler::{
    crawl, crawl_resilient, ChaosFetcher, CrawlConfig, FaultConfig, ResilientConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let web = generate(&CorpusConfig::small(99));

    // --- acquisition: a breadth-first form-focused crawl ---------------
    let crawl_result = crawl(&web.graph, web.portal, &CrawlConfig::default());
    println!(
        "crawler visited {} pages, found {} searchable-form pages, rejected {} \
         non-searchable form pages ({} dead links)",
        crawl_result.visited.len(),
        crawl_result.searchable_form_pages.len(),
        crawl_result.rejected_form_pages.len(),
        crawl_result.dead_links,
    );

    // The same crawl under a hostile network: 25% of fetches fail
    // transiently, yet retries with backoff and per-host circuit breakers
    // recover nearly everything (see `cafc crawl` for the full report).
    let mut chaos = ChaosFetcher::over_graph(&web.graph, FaultConfig::transient(0.25, 7));
    let faulty = crawl_resilient(
        &web.graph,
        &mut chaos,
        web.portal,
        &ResilientConfig::default(),
    );
    println!(
        "under 25% transient faults: {} of {} searchable-form pages recovered\n{}",
        faulty.pages.searchable_form_pages.len(),
        crawl_result.searchable_form_pages.len(),
        faulty.stats,
    );

    // --- organization: CAFC-CH over exactly what the crawler found -----
    let targets = crawl_result.searchable_form_pages.clone();
    let corpus = FormPageCorpus::from_graph(&web.graph, &targets, &ModelOptions::default());
    let space = FormPageSpace::new(&corpus, FeatureConfig::combined());
    let mut rng = StdRng::seed_from_u64(1);
    let config = CafcChConfig::paper_default(8).with_hub(cafc::HubClusterOptions {
        min_cardinality: 4,
        ..Default::default()
    });
    let result = cafc_ch(&web.graph, &targets, &space, &config, &mut rng);

    for (i, members) in result.outcome.partition.clusters().iter().enumerate() {
        println!("cluster {i}: {} databases", members.len());
    }

    // --- scoring: the crawled pages come with gold labels --------------
    let labels: Vec<_> = targets
        .iter()
        .map(|p| {
            web.form_pages
                .iter()
                .find(|r| r.page == *p)
                .map(|r| r.domain.name())
                .unwrap_or("unknown")
        })
        .collect();
    let clusters = result.outcome.partition.clusters();
    println!(
        "\nentropy {:.3}, F-measure {:.3} over {} crawled databases",
        cafc_eval::entropy(clusters, &labels, cafc_eval::EntropyBase::Two),
        cafc_eval::f_measure(clusters, &labels),
        targets.len(),
    );
}
