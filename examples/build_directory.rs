//! Build a hidden-web *directory* from clusters — the application the
//! paper motivates in §5: "Hidden-Web directories organize pointers to
//! online databases in a searchable topic hierarchy ... CAFC has the
//! potential to help automate the process."
//!
//! Clusters are auto-labelled with their top discriminating terms and
//! printed as a browsable directory with per-entry descriptions.
//!
//! ```text
//! cargo run --release --example build_directory
//! ```

use cafc::{cafc_ch, CafcChConfig, FeatureConfig, FormPageCorpus, FormPageSpace, ModelOptions};
use cafc_cluster::ClusterSpace;
use cafc_corpus::{generate, CorpusConfig};
use cafc_html::parse;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let web = generate(&CorpusConfig::small(123));
    let targets = web.form_page_ids();
    let corpus = FormPageCorpus::from_graph(&web.graph, &targets, &ModelOptions::default());
    let space = FormPageSpace::new(&corpus, FeatureConfig::combined());
    let mut rng = StdRng::seed_from_u64(5);
    let config = CafcChConfig::paper_default(8).with_hub(cafc::HubClusterOptions {
        min_cardinality: 4,
        ..Default::default()
    });
    let result = cafc_ch(&web.graph, &targets, &space, &config, &mut rng);

    println!("==============================================");
    println!("        THE HIDDEN-WEB DATABASE DIRECTORY      ");
    println!("==============================================\n");

    for members in result.outcome.partition.clusters() {
        if members.is_empty() {
            continue;
        }
        // Auto-label: the three strongest centroid terms of the category.
        let centroid = space.centroid(members);
        let label: Vec<String> = centroid
            .pc
            .top_terms(3)
            .into_iter()
            .map(|(t, _)| {
                let term = corpus.dict.term(t);
                let mut cs = term.chars();
                match cs.next() {
                    Some(c) => c.to_uppercase().collect::<String>() + cs.as_str(),
                    None => String::new(),
                }
            })
            .collect();
        println!("## {} ({} databases)", label.join(" / "), members.len());

        // List the first few member sites with their page titles and form
        // arity, the way a human-curated directory would.
        for &m in members.iter().take(4) {
            let url = web.graph.url(targets[m]);
            let html = web.graph.html(targets[m]).expect("form pages carry HTML");
            let doc = parse(html);
            let title = doc.title().unwrap_or_else(|| "(untitled)".to_owned());
            let forms = cafc_html::extract_forms(&doc);
            let arity = forms
                .first()
                .map_or(0, cafc_html::Form::visible_field_count);
            println!("   - {title}");
            println!("     {url}  [{arity}-attribute interface]");
        }
        if members.len() > 4 {
            println!("   ... and {} more", members.len() - 4);
        }
        println!();
    }
}
