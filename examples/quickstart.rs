//! Quickstart: cluster a synthetic deep web with CAFC-CH and inspect the
//! result.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cafc::{cafc_ch, CafcChConfig, FeatureConfig, FormPageCorpus, FormPageSpace, ModelOptions};
use cafc_cluster::ClusterSpace;
use cafc_corpus::{generate, CorpusConfig};
use cafc_eval::EntropyBase;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. A web to organize. In a real deployment this is the output of a
    //    form-focused crawler plus a backlink API; offline we synthesize an
    //    equivalent web (pages are real HTML, links are real links).
    let web = generate(&CorpusConfig::small(42));
    let targets = web.form_page_ids();
    println!("collected {} searchable form pages", targets.len());

    // 2. The form-page model: two TF-IDF vector spaces per page (page
    //    contents PC and form contents FC), location-aware term weights.
    let corpus = FormPageCorpus::from_graph(&web.graph, &targets, &ModelOptions::default());
    let space = FormPageSpace::new(&corpus, FeatureConfig::combined());

    // 3. CAFC-CH: hub clusters from shared backlinks seed k-means.
    let mut rng = StdRng::seed_from_u64(7);
    let config = CafcChConfig::paper_default(8).with_hub(cafc::HubClusterOptions {
        min_cardinality: 4,
        ..Default::default()
    });
    let result = cafc_ch(&web.graph, &targets, &space, &config, &mut rng);
    println!(
        "clustered into {} clusters ({} hub seeds, {} padded, {} k-means iterations)",
        result.outcome.partition.num_clusters(),
        result.hub_seeds,
        result.padded_seeds,
        result.outcome.iterations,
    );

    // 4. Inspect each cluster: size, top discriminating terms, sample URLs.
    for (i, members) in result.outcome.partition.clusters().iter().enumerate() {
        if members.is_empty() {
            continue;
        }
        let centroid = space.centroid(members);
        let top: Vec<&str> = centroid
            .pc
            .top_terms(5)
            .into_iter()
            .map(|(t, _)| corpus.dict.term(t))
            .collect();
        let sample = web.graph.url(targets[members[0]]);
        println!(
            "cluster {i}: {:>3} pages | top terms: {:<40} | e.g. {sample}",
            members.len(),
            top.join(", ")
        );
    }

    // 5. Because this is a synthetic web we can score against gold labels.
    let labels = web.labels();
    let clusters = result.outcome.partition.clusters();
    println!(
        "\nquality vs gold standard: entropy {:.3} (lower is better), F-measure {:.3}",
        cafc_eval::entropy(clusters, &labels, EntropyBase::Two),
        cafc_eval::f_measure(clusters, &labels),
    );
}
