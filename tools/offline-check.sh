#!/usr/bin/env bash
# Typecheck (and optionally test) the workspace without network access by
# patching external dependencies with the stubs in tools/offline-stubs/.
# See tools/offline-stubs/README.md for what the stubs do and don't cover.
#
# Usage:
#   tools/offline-check.sh check   # cargo check the offline-capable targets
#   tools/offline-check.sh test    # additionally run the test targets
#   tools/offline-check.sh clippy  # clippy with -D warnings
set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:-check}"

config=(
  --config 'patch.crates-io.rand.path="tools/offline-stubs/rand"'
  --config 'patch.crates-io.serde.path="tools/offline-stubs/serde"'
  --config 'patch.crates-io.serde_json.path="tools/offline-stubs/serde_json"'
  --config 'patch.crates-io.proptest.path="tools/offline-stubs/proptest"'
  --config 'patch.crates-io.criterion.path="tools/offline-stubs/criterion"'
)

lib_packages=(
  -p cafc-check -p cafc-exec -p cafc-obs -p cafc-html -p cafc-text -p cafc-vsm
  -p cafc-webgraph -p cafc-cluster -p cafc-eval -p cafc-corpus
  -p cafc-classify -p cafc-crawler -p cafc-explore -p cafc -p cafc-cli
  -p cafc-fuzz -p cafc-store -p cafc-index -p cafc-serve
)
core_tests=(
  --test pipeline --test crawl_integration --test corpus_calibration
  --test paper_shapes --test robustness --test torture --test determinism
  --test observability --test model_props --test differential
  --test crash_recovery --test retrieval --test scale --test bench_schema
)
# cafc-html integration tests minus proptests.rs (needs the real proptest).
html_tests=(--test edge_cases --test pathological --test props)
# cafc-check property suites living in other crates: these run offline (the
# proptest twins of the same invariants are feature-gated behind `networked`).
check_suites=(
  "cafc-webgraph --test proptests"
  "cafc-vsm --test props"
  "cafc-cluster --test props"
  "cafc-eval --test props --test metric_edges"
  "cafc-index --test props"
)

# Targets that genuinely require the real (registry) proptest/criterion and
# therefore cannot build against the empty stubs. Each entry is a path that
# must still exist: if a listed exclusion goes stale — the target was ported
# to cafc-check or deleted — this guard fails so the list shrinks with it.
networked_only=(
  "crates/html/tests/proptests.rs"
  "crates/text/tests/proptests.rs"
  "crates/vsm/tests/proptests.rs"
  "crates/cluster/tests/proptests.rs"
  "crates/eval/tests/proptests.rs"
  "crates/bench"
)
stale=0
for target in "${networked_only[@]}"; do
  if [[ -e "$target" ]]; then
    echo "SKIPPED (networked-only): $target"
  else
    echo "STALE exclusion (no such target): $target" >&2
    stale=1
  fi
done
if [[ "$stale" -ne 0 ]]; then
  echo "error: networked_only lists targets that no longer exist;" >&2
  echo "       remove the stale entries from tools/offline-check.sh" >&2
  exit 1
fi

# The static gates cost milliseconds: run them in every mode.
tools/panic-lint.sh
tools/config-lint.sh

case "$mode" in
  check)
    cargo check --offline "${config[@]}" "${lib_packages[@]}"
    cargo check --offline "${config[@]}" -p cafc-check -p cafc-crawler -p cafc-cli -p cafc-fuzz -p cafc-serve --all-targets
    cargo check --offline "${config[@]}" -p cafc-html "${html_tests[@]}"
    for suite in "${check_suites[@]}"; do
      # shellcheck disable=SC2086 # intentional word-splitting into -p/--test args
      cargo check --offline "${config[@]}" -p $suite
    done
    cargo check --offline "${config[@]}" -p cafc "${core_tests[@]}" --examples
    ;;
  test)
    cargo test --offline "${config[@]}" -p cafc-check -p cafc-exec -p cafc-obs \
      -p cafc-html -p cafc-text -p cafc-vsm -p cafc-webgraph -p cafc-cluster \
      -p cafc-eval -p cafc-corpus -p cafc-classify -p cafc-explore \
      -p cafc-store -p cafc-index -p cafc-serve --lib
    cargo test --offline "${config[@]}" -p cafc-check --all-targets
    cargo test --offline "${config[@]}" -p cafc-html "${html_tests[@]}"
    cargo test --offline "${config[@]}" -p cafc-crawler -p cafc-cli -p cafc-fuzz -p cafc-serve --all-targets
    for suite in "${check_suites[@]}"; do
      # shellcheck disable=SC2086 # intentional word-splitting into -p/--test args
      cargo test --offline "${config[@]}" -p $suite
    done
    cargo test --offline "${config[@]}" -p cafc --lib "${core_tests[@]}"
    # The determinism suite re-runs under pinned worker counts: the
    # CAFC_TEST_THREADS policy joins every sweep (see tests/determinism.rs).
    for threads in 1 4; do
      CAFC_TEST_THREADS="$threads" \
        cargo test --offline "${config[@]}" -p cafc --test determinism
    done
    ;;
  clippy)
    cargo clippy --offline "${config[@]}" "${lib_packages[@]}" -- -D warnings
    cargo clippy --offline "${config[@]}" -p cafc-check -p cafc-crawler -p cafc-cli -p cafc-fuzz -p cafc-serve --all-targets -- -D warnings
    cargo clippy --offline "${config[@]}" -p cafc-html "${html_tests[@]}" -- -D warnings
    for suite in "${check_suites[@]}"; do
      # shellcheck disable=SC2086 # intentional word-splitting into -p/--test args
      cargo clippy --offline "${config[@]}" -p $suite -- -D warnings
    done
    cargo clippy --offline "${config[@]}" -p cafc "${core_tests[@]}" --examples -- -D warnings
    ;;
  *)
    echo "usage: $0 [check|test|clippy]" >&2
    exit 2
    ;;
esac
