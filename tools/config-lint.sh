#!/usr/bin/env bash
# The builder gate: fail the build when a struct literal of one of the
# `#[non_exhaustive]` configuration types appears outside its defining
# module. The compiler already rejects cross-crate literals (E0639); this
# lint closes the same-crate loophole so every construction site goes
# through the `new()` / `with_*` builder surface and stays source-compatible
# when fields are added (see DESIGN.md §9).
#
# Defining modules (the only places allowed to write the literal):
#   KMeansOptions -> crates/cluster/src/kmeans.rs
#   ModelOptions  -> crates/core/src/model.rs
#   CafcChConfig  -> crates/core/src/algorithms.rs
#   IngestLimits  -> crates/core/src/ingest.rs
#   ObsConfig     -> crates/obs/src/lib.rs
#   FuzzConfig    -> crates/fuzz/src/config.rs
#   StoreConfig   -> crates/store/src/config.rs
#   SearchConfig  -> crates/core/src/search.rs
#   Bm25Params    -> crates/index/src/bm25.rs
#   ServeOptions  -> crates/serve/src/server.rs
#   LoadgenConfig -> crates/serve/src/loadgen.rs
#   MiniBatchOptions    -> crates/cluster/src/minibatch.rs
#   BenchConfig         -> crates/core/src/bench.rs
#   ShardedCorpusConfig -> crates/corpus/src/shard.rs
#
# Usage: tools/config-lint.sh
set -euo pipefail
cd "$(dirname "$0")/.."

declare -A home=(
  [KMeansOptions]="crates/cluster/src/kmeans.rs"
  [ModelOptions]="crates/core/src/model.rs"
  [CafcChConfig]="crates/core/src/algorithms.rs"
  [IngestLimits]="crates/core/src/ingest.rs"
  [ObsConfig]="crates/obs/src/lib.rs"
  [CheckConfig]="crates/check/src/runner.rs"
  [FuzzConfig]="crates/fuzz/src/config.rs"
  [StoreConfig]="crates/store/src/config.rs"
  [SearchConfig]="crates/core/src/search.rs"
  [Bm25Params]="crates/index/src/bm25.rs"
  [ServeOptions]="crates/serve/src/server.rs"
  [LoadgenConfig]="crates/serve/src/loadgen.rs"
  [StreamConfig]="crates/core/src/stream.rs"
  [MiniBatchOptions]="crates/cluster/src/minibatch.rs"
  [BenchConfig]="crates/core/src/bench.rs"
  [ShardedCorpusConfig]="crates/corpus/src/shard.rs"
)

status=0
for ty in "${!home[@]}"; do
  # A literal is `Type {` NOT preceded by `struct`/`fn ... ->` context:
  # skip declarations (`struct Type {`), impl blocks (`impl Type {`), and
  # return-type positions (`-> Type {`). Comment lines are exempt.
  hits=$(grep -rn --include='*.rs' -E "${ty}[[:space:]]*\{" crates tests examples 2>/dev/null |
    grep -vE '^[^:]+:[0-9]+:[[:space:]]*//' |
    grep -vE "(struct|impl|enum|trait)[[:space:]]+${ty}|->[[:space:]]*&?${ty}[[:space:]]*\{" |
    grep -v "^${home[$ty]}:" || true)
  if [[ -n "$hits" ]]; then
    echo "config-lint: ${ty} struct literal outside ${home[$ty]}:" >&2
    echo "$hits" | sed 's/^/    /' >&2
    status=1
  fi
done

if [[ "$status" -ne 0 ]]; then
  echo "config-lint: FAILED — construct configuration types through their" >&2
  echo "builder surface (Type::new()/Type::default() + with_* setters)." >&2
else
  echo "config-lint: OK"
fi
exit "$status"
