//! Offline stub of `proptest`: empty. Property-test targets are skipped by
//! `tools/offline-check.sh`.
