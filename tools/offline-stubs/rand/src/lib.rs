//! Offline stub of `rand` 0.9 — a functional uniform RNG over the API
//! surface this workspace uses. Not bit-compatible with the real crate.

/// Core source of randomness.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

const SPLITMIX_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// One splitmix64 output step (also used as a mixer).
#[inline]
pub(crate) fn splitmix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform f64 in [0, 1).
#[inline]
fn to_unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types `Rng::random` can produce.
pub trait StandardSample {
    /// Draw a uniform value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        to_unit_f64(rng.next_u64())
    }
}
impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        to_unit_f64(rng.next_u64()) as f32
    }
}
impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with uniform sampling over a half-open or inclusive interval.
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_in<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(lo: $t, hi: $t, inclusive: bool, rng: &mut R) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                assert!(span > 0, "empty range");
                let off = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_in<R: RngCore + ?Sized>(lo: f64, hi: f64, _inclusive: bool, rng: &mut R) -> f64 {
        lo + to_unit_f64(rng.next_u64()) * (hi - lo)
    }
}
impl SampleUniform for f32 {
    fn sample_in<R: RngCore + ?Sized>(lo: f32, hi: f32, _inclusive: bool, rng: &mut R) -> f32 {
        lo + (to_unit_f64(rng.next_u64()) as f32) * (hi - lo)
    }
}

/// Ranges `Rng::random_range` accepts.
pub trait SampleRange<T> {
    /// Draw a uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_in(lo, hi, true, rng)
    }
}

/// User-facing random-value methods (blanket-implemented for any core).
pub trait Rng: RngCore {
    /// Uniform value of an inferred type.
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform value in `range`.
    fn random_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        to_unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding entry point.
pub trait SeedableRng: Sized {
    /// Deterministic construction from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng, SPLITMIX_GAMMA};

    macro_rules! splitmix_rng {
        ($name:ident) => {
            /// Splitmix64-sequence generator (offline stand-in).
            #[derive(Debug, Clone)]
            pub struct $name {
                state: u64,
            }
            impl RngCore for $name {
                fn next_u64(&mut self) -> u64 {
                    self.state = self.state.wrapping_add(SPLITMIX_GAMMA);
                    splitmix64(self.state)
                }
            }
            impl SeedableRng for $name {
                fn seed_from_u64(state: u64) -> Self {
                    $name { state: splitmix64(state ^ SPLITMIX_GAMMA) }
                }
            }
        };
    }
    splitmix_rng!(StdRng);
    splitmix_rng!(SmallRng);
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random selection from indexable collections.
    pub trait IndexedRandom {
        /// Element type.
        type Output;
        /// A uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Output>;
    }

    impl<T> IndexedRandom for [T] {
        type Output = T;
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = (rng.next_u64() % self.len() as u64) as usize;
                Some(&self[i])
            }
        }
    }

    /// Index-sampling without replacement.
    pub mod index {
        use super::RngCore;

        /// A set of sampled indices.
        #[derive(Debug, Clone)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// The sampled indices as a vector.
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }
            /// Iterate the sampled indices.
            pub fn iter(&self) -> std::slice::Iter<'_, usize> {
                self.0.iter()
            }
            /// Number of sampled indices.
            pub fn len(&self) -> usize {
                self.0.len()
            }
            /// True when nothing was sampled.
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }
        }

        impl IntoIterator for IndexVec {
            type Item = usize;
            type IntoIter = std::vec::IntoIter<usize>;
            fn into_iter(self) -> Self::IntoIter {
                self.0.into_iter()
            }
        }

        /// Sample `amount` distinct indices from `0..length` (partial
        /// Fisher–Yates), uniformly at random.
        pub fn sample<R: RngCore + ?Sized>(
            rng: &mut R,
            length: usize,
            amount: usize,
        ) -> IndexVec {
            assert!(amount <= length, "cannot sample {amount} of {length}");
            let mut pool: Vec<usize> = (0..length).collect();
            for i in 0..amount {
                let j = i + (rng.next_u64() % (length - i) as u64) as usize;
                pool.swap(i, j);
            }
            pool.truncate(amount);
            IndexVec(pool)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.random_range(3..9);
            assert!((3..9).contains(&v));
            let w: f64 = rng.random_range(0.25..0.75);
            assert!((0.25..0.75).contains(&w));
            let u = rng.random_range(5..=5);
            assert_eq!(u, 5);
        }
    }

    #[test]
    fn bool_probability_roughly_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "{hits}");
    }

    #[test]
    fn sample_is_distinct_and_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut idx = super::seq::index::sample(&mut rng, 50, 20).into_vec();
        idx.sort_unstable();
        let mut dedup = idx.clone();
        dedup.dedup();
        assert_eq!(idx.len(), 20);
        assert_eq!(dedup.len(), 20);
        assert!(idx.iter().all(|&i| i < 50));
    }
}
