//! Offline stub of `serde`: marker traits only. The `derive` feature is a
//! no-op, so targets using `#[derive(Serialize)]` cannot be checked offline.

/// Serialization marker (no-op in the offline stub).
pub trait Serialize {}

/// Deserialization marker (no-op in the offline stub).
pub trait Deserialize {}

impl<T: Serialize + ?Sized> Serialize for &T {}
impl<T: Serialize> Serialize for Vec<T> {}
impl<T: Serialize> Serialize for [T] {}
impl Serialize for String {}
impl Serialize for str {}
impl Serialize for f64 {}
impl Serialize for u64 {}
impl Serialize for usize {}
impl Serialize for bool {}
