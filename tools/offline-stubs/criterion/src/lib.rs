//! Offline stub of `criterion`: empty. Bench targets are skipped by
//! `tools/offline-check.sh`.
