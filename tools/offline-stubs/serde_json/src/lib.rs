//! Offline stub of `serde_json`: a small but real JSON `Value` with a
//! parser and serializer, covering the workspace's untyped JSON usage.
//! Derive-based (de)serialization is not supported offline.

use std::collections::BTreeMap;
use std::fmt;

/// Object representation (the real crate's `Map<String, Value>`).
pub type Map = BTreeMap<String, Value>;

/// An untyped JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as f64 — sufficient for this workspace).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

impl Value {
    /// Member lookup on objects; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The string slice if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The bool if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The map if this is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => {
            if n.fract() == 0.0 && n.abs() < 9e15 {
                out.push_str(&format!("{}", *n as i64));
            } else {
                out.push_str(&format!("{n}"));
            }
        }
        Value::String(s) => escape_into(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_value(self, &mut out);
        f.write_str(&out)
    }
}

/// Parse/serialize error.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}
impl std::error::Error for Error {}

/// `Result` alias matching the real crate.
pub type Result<T, E = Error> = std::result::Result<T, E>;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, msg: &str) -> Result<T> {
        Err(Error(format!("{msg} at byte {}", self.pos)))
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(what)
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') => self.parse_lit("true", Value::Bool(true)),
            Some(b'f') => self.parse_lit("false", Value::Bool(false)),
            Some(b'n') => self.parse_lit("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => self.err("expected a JSON value"),
        }
    }

    fn parse_lit(&mut self, lit: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            self.err("invalid literal")
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("non-utf8 number".into()))?;
        match text.parse::<f64>() {
            Ok(n) => Ok(Value::Number(n)),
            Err(_) => self.err("invalid number"),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok());
                            let Some(code) = hex else {
                                return self.err("invalid \\u escape");
                            };
                            // Surrogates are replaced rather than paired;
                            // the workspace never emits them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return self.err("invalid escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("non-utf8 string".into()))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.eat(b'{', "expected '{'")?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':', "expected ':'")?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }
}

/// Parse a JSON document into a [`Value`].
///
/// The real crate is generic over `T: Deserialize`; offline only `Value`
/// (and types with a `From<Value>`-free untyped path) are supported, which
/// is all the workspace uses.
pub fn from_str(s: &str) -> Result<Value> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing characters");
    }
    Ok(v)
}

/// Compact serialization of a [`Value`].
pub fn to_string(value: &Value) -> Result<String> {
    Ok(value.to_string())
}

/// Pretty serialization (offline stub: two-space indentation, arrays and
/// objects always broken across lines).
pub fn to_string_pretty(value: &Value) -> Result<String> {
    fn pretty(v: &Value, indent: usize, out: &mut String) {
        let pad = "  ".repeat(indent + 1);
        let close = "  ".repeat(indent);
        match v {
            Value::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&pad);
                    pretty(item, indent + 1, out);
                }
                out.push('\n');
                out.push_str(&close);
                out.push(']');
            }
            Value::Object(map) if !map.is_empty() => {
                out.push_str("{\n");
                for (i, (k, val)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&pad);
                    escape_into(k, out);
                    out.push_str(": ");
                    pretty(val, indent + 1, out);
                }
                out.push('\n');
                out.push_str(&close);
                out.push('}');
            }
            other => write_value(other, out),
        }
    }
    let mut out = String::new();
    pretty(value, 0, &mut out);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_with_escapes() {
        let v = Value::Array(vec![
            Value::String("a \"quoted\" \\ path\nline".into()),
            Value::Number(3.0),
            Value::Bool(true),
            Value::Null,
        ]);
        let s = v.to_string();
        assert_eq!(from_str(&s).expect("parses"), v);
    }

    #[test]
    fn parses_nested_object() {
        let v = from_str(r#" {"clusters": [["http://a.com/"], []], "k": 2} "#).expect("parses");
        let clusters = v.get("clusters").and_then(Value::as_array).expect("array");
        assert_eq!(clusters.len(), 2);
        assert_eq!(clusters[0].as_array().expect("inner")[0].as_str(), Some("http://a.com/"));
        assert_eq!(v.get("k").and_then(Value::as_f64), Some(2.0));
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str("{, }").is_err());
        assert!(from_str("[1, 2").is_err());
        assert!(from_str("\"unterminated").is_err());
        assert!(from_str("[] trailing").is_err());
    }
}
