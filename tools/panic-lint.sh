#!/usr/bin/env bash
# The no-panic gate: fail the build when new `unwrap()` / `panic!` /
# `expect(` / `unreachable!` / `todo!` / `unimplemented!` sites appear in
# library-crate source outside `#[cfg(test)]` code.
#
# Library crates feed the ingestion pipeline, which must survive arbitrary
# input (see DESIGN.md §8); every potential panic site there is either
# removed or explicitly allowlisted with a justification in
# tools/panic-allowlist.txt. Test modules (everything from the first
# `#[cfg(test)]` line to end-of-file, per repo convention) and comments are
# exempt.
#
# Usage: tools/panic-lint.sh            # check, exit 1 on violations
#        tools/panic-lint.sh --counts   # print current per-file counts
set -euo pipefail
cd "$(dirname "$0")/.."

ALLOWLIST="tools/panic-allowlist.txt"
PATTERN='\.unwrap\(\)|panic!|\.expect\(|unreachable!|todo!|unimplemented!'

# Print the non-test, non-comment portion of a source file: stop at the
# first `#[cfg(test)]` (test modules sit at the end of each file by repo
# convention) and drop pure comment lines.
lib_code() {
  awk '/^[[:space:]]*#\[cfg\(test\)\]/ { exit } { print }' "$1" |
    grep -vE '^[[:space:]]*//' || true
}

allowed_count() {
  local file="$1"
  if [[ -f "$ALLOWLIST" ]]; then
    awk -v f="$file" '$1 == f { print $2; found = 1 } END { if (!found) print 0 }' "$ALLOWLIST"
  else
    echo 0
  fi
}

mode="${1:-check}"
status=0
total=0

for file in $(find crates -path '*/src/*' -name '*.rs' | sort); do
  count=$(lib_code "$file" | grep -cE "$PATTERN" || true)
  total=$((total + count))
  if [[ "$mode" == "--counts" ]]; then
    [[ "$count" -gt 0 ]] && echo "$count $file"
    continue
  fi
  allowed=$(allowed_count "$file")
  if [[ "$count" -gt "$allowed" ]]; then
    echo "panic-lint: $file has $count panic site(s), allowlist permits $allowed:" >&2
    lib_code "$file" | grep -nE "$PATTERN" | sed 's/^/    /' >&2
    status=1
  elif [[ "$count" -lt "$allowed" ]]; then
    echo "panic-lint: note: $file has $count panic site(s) but allowlist permits $allowed" \
         "— consider tightening $ALLOWLIST" >&2
  fi
done

if [[ "$mode" == "--counts" ]]; then
  echo "total: $total"
  exit 0
fi

if [[ "$status" -ne 0 ]]; then
  echo "panic-lint: FAILED — remove the panic site (typed error or documented" >&2
  echo "saturating fallback; see DESIGN.md §8) or, if provably unreachable," >&2
  echo "add a justified entry to $ALLOWLIST." >&2
else
  echo "panic-lint: OK"
fi
exit "$status"
